#include "telemetry/telemetry.hh"

#include <algorithm>
#include <map>

#include "sim/log.hh"

namespace ariadne::telemetry
{

namespace detail
{
std::atomic<bool> g_enabled{false};
} // namespace detail

void
setEnabled(bool on) noexcept
{
    detail::g_enabled.store(on, std::memory_order_relaxed);
}

Registry::Shard &
Registry::attachShard()
{
    std::lock_guard<std::mutex> lk(mu);
    shards.push_back(std::make_unique<Shard>());
    return *shards.back();
}

std::size_t
Registry::intern(const std::string &name, bool duration)
{
    std::lock_guard<std::mutex> lk(mu);
    for (const Entry &e : entries) {
        if (e.name == name && e.isDuration == duration)
            return e.slot;
    }
    std::size_t width = duration ? 2 : 1;
    panicIf(nextSlot + width > maxSlots,
            "telemetry registry slot space exhausted (raise "
            "Registry::maxSlots)");
    std::size_t slot = nextSlot;
    nextSlot += width;
    entries.push_back(Entry{name, slot, duration});
    return slot;
}

std::size_t
Registry::counterSlot(const std::string &name)
{
    return intern(name, /*duration=*/false);
}

std::size_t
Registry::durationSlot(const std::string &name)
{
    return intern(name, /*duration=*/true);
}

Registry::Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lk(mu);
    auto slot_total = [&](std::size_t slot) {
        std::uint64_t total = 0;
        for (const auto &shard : shards)
            total +=
                shard->slots[slot].load(std::memory_order_relaxed);
        return total;
    };
    for (const Entry &e : entries) {
        if (e.isDuration) {
            snap.durations.push_back(DurationValue{
                e.name, slot_total(e.slot + 1), slot_total(e.slot)});
        } else {
            snap.counters.push_back(
                CounterValue{e.name, slot_total(e.slot)});
        }
    }
    auto by_name = [](const auto &a, const auto &b) {
        return a.name < b.name;
    };
    std::sort(snap.counters.begin(), snap.counters.end(), by_name);
    std::sort(snap.durations.begin(), snap.durations.end(), by_name);
    return snap;
}

void
Registry::reset() noexcept
{
    std::lock_guard<std::mutex> lk(mu);
    for (const auto &shard : shards)
        for (std::size_t i = 0; i < maxSlots; ++i)
            shard->slots[i].store(0, std::memory_order_relaxed);
}

std::uint64_t
Registry::Snapshot::counter(const std::string &name) const noexcept
{
    for (const CounterValue &c : counters)
        if (c.name == name)
            return c.value;
    return 0;
}

Registry::DurationValue
Registry::Snapshot::duration(const std::string &name) const noexcept
{
    for (const DurationValue &d : durations)
        if (d.name == name)
            return d;
    return DurationValue{name, 0, 0};
}

void
Registry::Snapshot::merge(const Snapshot &o)
{
    std::map<std::string, CounterValue> cs;
    for (const CounterValue &c : counters)
        cs[c.name] = c;
    for (const CounterValue &c : o.counters) {
        auto [it, inserted] = cs.emplace(c.name, c);
        if (!inserted)
            it->second.value += c.value;
    }
    counters.clear();
    for (auto &[name, c] : cs)
        counters.push_back(std::move(c));

    std::map<std::string, DurationValue> ds;
    for (const DurationValue &d : durations)
        ds[d.name] = d;
    for (const DurationValue &d : o.durations) {
        auto [it, inserted] = ds.emplace(d.name, d);
        if (!inserted) {
            it->second.count += d.count;
            it->second.totalNs += d.totalNs;
        }
    }
    durations.clear();
    for (auto &[name, d] : ds)
        durations.push_back(std::move(d));
}

} // namespace ariadne::telemetry
