#include "swap/zram.hh"

#include <algorithm>

#include "sim/log.hh"
#include "telemetry/journey.hh"
#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

telemetry::Counter c_compressOut("zram.compress_out");
telemetry::Counter c_writeback("zram.writeback");
telemetry::Counter c_dropped("zram.dropped");
telemetry::Counter c_swapinZpool("zram.swapin_zpool");
telemetry::Counter c_swapinFlash("zram.swapin_flash");
telemetry::DurationProbe d_swapin("zram.swapin");

} // namespace

ZramScheme::ZramScheme(SwapContext context, ZramConfig config)
    : SwapScheme(context), cfg(config), codec(makeCodec(cfg.codec)),
      pool(cfg.zpoolBytes)
{
    if (cfg.writeback)
        flashDev = std::make_unique<FlashDevice>(cfg.flashBytes);
}

std::string
ZramScheme::name() const
{
    return cfg.writeback ? "zswap" : "zram";
}

namespace
{

/** Shared schema/factory of the zram and zswap registrations; they
 * differ only in the writeback axis (and zswap's flash knob). */
SchemeInfo
zramFamilyInfo(bool writeback)
{
    SchemeInfo info;
    info.key = writeback ? "zswap" : "zram";
    info.displayName = writeback ? "ZSWAP" : "ZRAM";
    info.description =
        writeback ? "ZRAM baseline with ZSWAP-style writeback: "
                    "oldest compressed objects spill to flash when "
                    "the zpool fills"
                  : "state-of-the-art Android baseline: 4 KB "
                    "compression chunks, LRU victims, on-demand "
                    "decompression";
    info.knobs = {
        {"zpool_mb", "mb", "3072", "zpool capacity (paper scale)"},
        {"reclaim_batch", "u64", "32",
         "pages compressed per reclaim batch"},
        {"proactive_fraction", "double", "0.03",
         "share of a backgrounded app's resident pages compressed "
         "proactively",
         [](const std::string &value) {
             SchemeParams probe;
             probe.set("proactive_fraction", value);
             double v = probe.getDouble("proactive_fraction", 0.0);
             if (v < 0.0 || v > 1.0)
                 throw SchemeError("scheme knob 'proactive_fraction' "
                                   "must be in [0, 1], got '" + value +
                                   "'");
         }},
        {"codec", "string", "lzo",
         "compression codec (lzo|lz4|bdi|null)",
         [](const std::string &value) { parseCodecKnob(value); }},
    };
    if (writeback)
        info.knobs.push_back({"flash_mb", "mb", "8192",
                              "flash swap-space capacity for "
                              "compressed writeback (paper scale)"});
    info.build = [writeback](SwapContext ctx,
                             const SchemeParams &params,
                             double scale) {
        ZramConfig zc;
        zc.writeback = writeback;
        zc.zpoolBytes = scaledBytes(
            params.getMiB("zpool_mb", zc.zpoolBytes), scale);
        zc.flashBytes = scaledBytes(
            params.getMiB("flash_mb", zc.flashBytes), scale);
        zc.reclaimBatch =
            params.getU64("reclaim_batch", zc.reclaimBatch);
        // Range-checked by the knob's check lambda at validate time.
        zc.proactiveFraction = params.getDouble("proactive_fraction",
                                                zc.proactiveFraction);
        if (const std::string *codec = params.raw("codec"))
            zc.codec = parseCodecKnob(*codec);
        return std::make_unique<ZramScheme>(ctx, zc);
    };
    return info;
}

} // namespace

SchemeInfo
zramSchemeInfo()
{
    return zramFamilyInfo(/*writeback=*/false);
}

SchemeInfo
zswapSchemeInfo()
{
    return zramFamilyInfo(/*writeback=*/true);
}

ZramScheme::AppState &
ZramScheme::stateFor(AppId uid)
{
    auto it = std::lower_bound(
        appStates.begin(), appStates.end(), uid,
        [](const std::unique_ptr<AppState> &a, AppId u) {
            return a->uid < u;
        });
    if (it != appStates.end() && (*it)->uid == uid)
        return **it;
    return **appStates.insert(
        it, std::make_unique<AppState>(uid, &lruOpCounter));
}

ZramScheme::AppState *
ZramScheme::oldestAppWithPages()
{
    AppState *oldest = nullptr;
    for (const auto &state : appStates) {
        if (state->resident.empty())
            continue;
        if (!oldest || state->lastAccess < oldest->lastAccess)
            oldest = state.get();
    }
    return oldest;
}

void
ZramScheme::onAdmit(PageMeta &page)
{
    AppState &app = stateFor(page.key.uid);
    app.resident.pushFront(page);
    app.lastAccess = ctx.clock.now();
}

void
ZramScheme::onAccess(PageMeta &page)
{
    AppState &app = stateFor(page.key.uid);
    app.resident.touch(page);
    app.lastAccess = ctx.clock.now();
}

bool
ZramScheme::ensureZpoolSpace(std::size_t csize, bool synchronous)
{
    while (!pool.canFit(csize)) {
        // Oldest live compressed object; skip stale FIFO entries.
        PageMeta *victim = nullptr;
        ZObjectId obj = invalidObject;
        while (!compressedFifo.empty()) {
            auto [candidate, owner] = compressedFifo.front();
            compressedFifo.pop_front();
            if (pool.live(candidate) &&
                pool.cookie(candidate) ==
                    reinterpret_cast<std::uint64_t>(owner)) {
                obj = candidate;
                victim = const_cast<PageMeta *>(owner);
                break;
            }
        }
        if (!victim)
            return false;

        std::size_t obj_size = pool.objectSize(obj);
        if (cfg.writeback && flashDev) {
            FlashSlot slot = flashDev->write(obj_size);
            if (slot != invalidFlashSlot) {
                Tick submit = ctx.timing.params().flashSubmitCpuNs;
                ctx.cpu.charge(CpuRole::IoSubmit, submit);
                if (synchronous)
                    ctx.clock.advance(submit);
                c_writeback.add();
                telemetry::journeyMark(
                    victim->key.uid, victim->key.pfn,
                    telemetry::JourneyStep::Writeback,
                    ctx.clock.now());
                ctx.arena.setLocation(*victim, PageLocation::Flash);
                victim->flashSlot = slot;
                victim->objectId = invalidObject;
                pool.erase(obj);
                continue;
            }
        }
        // No writeback possible: data is dropped (§2.2 — the system
        // deletes inactive compressed data, risking app termination).
        c_dropped.add();
        telemetry::journeyMark(victim->key.uid, victim->key.pfn,
                               telemetry::JourneyStep::Lost,
                               ctx.clock.now());
        ctx.arena.setLocation(*victim, PageLocation::Lost);
        victim->objectId = invalidObject;
        ++lost;
        pool.erase(obj);
    }
    return true;
}

void
ZramScheme::compressOut(PageMeta &victim, bool synchronous)
{
    PageRef ref{victim.key, victim.version};
    compressOutPresized(victim, synchronous,
                        ctx.compressor.compressedSizeOne(
                            ref, *codec, cfg.chunkBytes));
}

void
ZramScheme::compressOutPresized(PageMeta &victim, bool synchronous,
                                std::size_t csize)
{
    c_compressOut.add();
    if (!ensureZpoolSpace(csize, synchronous)) {
        telemetry::journeyMark(victim.key.uid, victim.key.pfn,
                               telemetry::JourneyStep::Lost,
                               ctx.clock.now());
        ctx.arena.setLocation(victim, PageLocation::Lost);
        ++lost;
        ctx.dram.release(1);
        return;
    }
    ZObjectId obj =
        pool.insert(csize, reinterpret_cast<std::uint64_t>(&victim));
    panicIf(obj == invalidObject,
            "zpool insert failed after ensureZpoolSpace");

    telemetry::journeyMark(victim.key.uid, victim.key.pfn,
                           telemetry::JourneyStep::Zram,
                           ctx.clock.now(), csize);
    ctx.arena.setLocation(victim, PageLocation::Zpool);
    victim.objectId = obj;
    compressedFifo.emplace_back(obj, &victim);
    compLog.push_back(CompressionEvent{victim.key, victim.truth});

    chargeCompression(victim.key.uid, codec->cost(), cfg.chunkBytes,
                      pageSize, csize, synchronous);
    ctx.dram.release(1);
}

std::size_t
ZramScheme::compressTail(AppState &app, std::size_t limit,
                         bool synchronous)
{
    // Pop the whole batch, then one batched materialize+compress
    // sizing pass before any page is inserted (sizes are pure
    // functions of page content, so pre-computing them is
    // behaviour-identical to sizing victim by victim).
    std::vector<PageMeta *> victims;
    victims.reserve(limit);
    while (victims.size() < limit) {
        PageMeta *victim = app.resident.popBack();
        if (!victim)
            break;
        victims.push_back(victim);
    }
    if (victims.empty())
        return 0;
    std::vector<PageRef> refs;
    refs.reserve(victims.size());
    for (PageMeta *p : victims)
        refs.push_back(PageRef{p->key, p->version});
    std::vector<std::size_t> sizes;
    ctx.compressor.compressedSizeEach(refs, *codec, cfg.chunkBytes,
                                      sizes);
    for (std::size_t i = 0; i < victims.size(); ++i)
        compressOutPresized(*victims[i], synchronous, sizes[i]);
    return victims.size();
}

std::size_t
ZramScheme::reclaim(std::size_t pages, bool direct)
{
    if (direct)
        ++directRuns;
    std::size_t freed = 0;
    while (freed < pages) {
        AppState *app = oldestAppWithPages();
        if (!app)
            break;
        std::size_t batch = std::min(cfg.reclaimBatch, pages - freed);
        std::size_t done = compressTail(*app, batch, direct);
        if (done == 0)
            break;
        freed += done;
    }
    chargeLruOps(direct);
    return freed;
}

void
ZramScheme::onBackground(AppId uid)
{
    if (cfg.proactiveFraction <= 0.0)
        return;
    // Proactive periodic compression of the backgrounded app's LRU
    // tail (the vendor behaviour §2.3 describes): frees memory early
    // at the price of extra compression CPU on every switch.
    AppState &app = stateFor(uid);
    auto target = static_cast<std::size_t>(
        cfg.proactiveFraction *
        static_cast<double>(app.resident.size()));
    Tick before = ctx.cpu.grandTotal();
    compressTail(app, target, /*synchronous=*/false);
    chargeLruOps(false);
    bgReclaimNs += ctx.cpu.grandTotal() - before;
}

SwapInResult
ZramScheme::swapIn(PageMeta &page)
{
    telemetry::ScopedTimer timer(d_swapin);
    SwapInResult res;
    Stopwatch sw(ctx.clock);

    Tick fault = ctx.timing.params().majorFaultBaseNs;
    ctx.cpu.charge(CpuRole::FaultPath, fault);
    ctx.clock.advance(fault);

    if (ctx.arena.location(page) == PageLocation::Zpool) {
        c_swapinZpool.add();
        sectorLog.push_back(pool.sectorOf(page.objectId));
        std::size_t csize = pool.objectSize(page.objectId);
        pool.erase(page.objectId);
        page.objectId = invalidObject;
        chargeDecompression(page.key.uid, codec->cost(), cfg.chunkBytes,
                            pageSize, csize, true);
    } else if (ctx.arena.location(page) == PageLocation::Flash) {
        c_swapinFlash.add();
        panicIf(!flashDev, "flash swap-in without writeback device");
        std::size_t csize = flashDev->read(page.flashSlot);
        flashDev->free(page.flashSlot);
        page.flashSlot = invalidFlashSlot;
        Tick submit = ctx.timing.params().flashSubmitCpuNs;
        ctx.cpu.charge(CpuRole::IoSubmit, submit);
        ctx.clock.advance(submit + ctx.timing.flashReadNs(1));
        ctx.activity.flashReadBytes += csize;
        chargeDecompression(page.key.uid, codec->cost(), cfg.chunkBytes,
                            pageSize, csize, true);
        res.fromFlash = true;
    } else {
        panic("ZramScheme::swapIn on page not in zpool/flash");
    }

    if (!ctx.dram.allocate(1)) {
        // On-demand compression to make room (§2.3, Fig. 2): this is
        // the direct-reclaim cost ZRAM adds to relaunches.
        reclaim(cfg.reclaimBatch, true);
        panicIf(!ctx.dram.allocate(1),
                "direct reclaim failed to free memory");
    }
    ctx.arena.setLocation(page, PageLocation::Resident);
    AppState &app = stateFor(page.key.uid);
    app.resident.pushFront(page);
    app.lastAccess = ctx.clock.now();
    chargeLruOps(true);

    res.latencyNs = sw.elapsed();
    return res;
}

void
ZramScheme::onFree(PageMeta &page)
{
    switch (ctx.arena.location(page)) {
      case PageLocation::Resident: {
        AppState &app = stateFor(page.key.uid);
        if (app.resident.contains(page))
            app.resident.remove(page);
        ctx.dram.release(1);
        break;
      }
      case PageLocation::Zpool:
        pool.erase(page.objectId);
        page.objectId = invalidObject;
        break;
      case PageLocation::Flash:
        flashDev->free(page.flashSlot);
        page.flashSlot = invalidFlashSlot;
        break;
      default:
        break;
    }
    telemetry::journeyMark(page.key.uid, page.key.pfn,
                           telemetry::JourneyStep::Free,
                           ctx.clock.now());
    ctx.arena.setLocation(page, PageLocation::Lost);
}

std::size_t
ZramScheme::compressedStoredBytes() const
{
    std::size_t total = pool.storedBytes();
    if (flashDev)
        total += flashDev->liveBytes();
    return total;
}

} // namespace ariadne
