#include "workload/apps.hh"

#include "sim/log.hh"

namespace ariadne
{

namespace
{

/** Build a ContentMix from weights in enum order. */
ContentMix
mix(double zero, double text, double pointer, double counter,
    double flt, double media, double random)
{
    ContentMix m;
    m[RegionType::Zero] = zero;
    m[RegionType::Text] = text;
    m[RegionType::Pointer] = pointer;
    m[RegionType::Counter] = counter;
    m[RegionType::Float] = flt;
    m[RegionType::Media] = media;
    m[RegionType::Random] = random;
    return m;
}

AppProfile
make(AppId uid, const char *name, std::size_t mb10s, std::size_t mb5min,
     double hot_frac, double warm_frac, double similarity, double reuse,
     double seq_prob, ContentMix m)
{
    AppProfile p;
    p.uid = uid;
    p.name = name;
    p.anonBytes10s = mb10s * 1024 * 1024;
    p.anonBytes5min = mb5min * 1024 * 1024;
    p.hotFraction = hot_frac;
    p.warmFraction = warm_frac;
    p.hotSimilarity = similarity;
    p.reuseFraction = reuse;
    p.seqAccessProb = seq_prob;
    p.mix = m;
    return p;
}

} // namespace

std::vector<AppProfile>
standardApps()
{
    std::vector<AppProfile> apps;
    // The five Table-1 apps, volumes (MB) from the paper.
    apps.push_back(make(0, "YouTube", 177, 358, 0.30, 0.35, 0.76, 0.99,
                        0.89, mix(0.15, 0.20, 0.20, 0.10, 0.05, 0.25,
                                  0.05)));
    apps.push_back(make(1, "Twitter", 182, 273, 0.35, 0.35, 0.74, 0.99,
                        0.89, mix(0.15, 0.35, 0.20, 0.10, 0.05, 0.10,
                                  0.05)));
    apps.push_back(make(2, "Firefox", 560, 716, 0.22, 0.35, 0.68, 0.98,
                        0.79, mix(0.15, 0.30, 0.25, 0.10, 0.05, 0.10,
                                  0.05)));
    apps.push_back(make(3, "GoogleEarth", 273, 429, 0.25, 0.35, 0.71,
                        0.98, 0.83,
                        mix(0.15, 0.15, 0.15, 0.10, 0.25, 0.15, 0.05)));
    apps.push_back(make(4, "BangDream", 326, 821, 0.12, 0.30, 0.58, 0.96,
                        0.78, mix(0.10, 0.10, 0.10, 0.05, 0.25, 0.30,
                                  0.10)));
    // The remaining five §5 apps; volumes in the same range.
    apps.push_back(make(5, "TikTok", 300, 520, 0.25, 0.35, 0.70, 0.98,
                        0.78, mix(0.12, 0.18, 0.18, 0.10, 0.07, 0.28,
                                  0.07)));
    apps.push_back(make(6, "Edge", 250, 400, 0.28, 0.35, 0.72, 0.98,
                        0.76, mix(0.15, 0.32, 0.22, 0.10, 0.04, 0.12,
                                  0.05)));
    apps.push_back(make(7, "GoogleMaps", 260, 450, 0.24, 0.35, 0.69,
                        0.98, 0.74,
                        mix(0.14, 0.16, 0.16, 0.10, 0.24, 0.15, 0.05)));
    apps.push_back(make(8, "AngryBirds", 200, 380, 0.18, 0.32, 0.64,
                        0.97, 0.68,
                        mix(0.12, 0.12, 0.12, 0.08, 0.22, 0.26, 0.08)));
    apps.push_back(make(9, "TwitchTV", 230, 410, 0.26, 0.35, 0.73, 0.98,
                        0.77, mix(0.13, 0.22, 0.18, 0.10, 0.05, 0.25,
                                  0.07)));
    return apps;
}

std::vector<AppProfile>
tableOneApps()
{
    auto all = standardApps();
    return {all[0], all[1], all[2], all[3], all[4]};
}

AppProfile
standardApp(const std::string &name)
{
    std::string known;
    for (const auto &app : standardApps()) {
        if (app.name == name)
            return app;
        known += known.empty() ? "" : ", ";
        known += app.name;
    }
    fatal("unknown standard app: " + name + " (valid: " + known + ")");
}

} // namespace ariadne
