/**
 * @file
 * Fig. 12: compression and decompression latency per application
 * under ZRAM and Ariadne (LZO, as on the Pixel 7).
 *
 * Following the paper's methodology, this measures the latency of
 * processing each application's *trace data* under each scheme's
 * chunk-size policy: ZRAM compresses everything at 4 KB; Ariadne
 * compresses hot data at SmallSize, warm at MediumSize and cold at
 * LargeSize. Decompression covers the relaunch-relevant data (hot
 * and warm), which is what application relaunches actually pay for.
 *
 * Paper result: Ariadne cuts decompression latency by ~60% (YouTube,
 * Twitter) up to ~90% (BangDream, whose relaunch data is small);
 * compression latency also drops ~20% for most apps.
 *
 * The ground-truth corpus composition is a workload-generator probe
 * (bare AppInstance with the shared eval seed, like Fig. 5) run as a
 * `custom` hook; the latency math is the calibrated TimingModel.
 */

#include "bench_common.hh"

#include "core/config.hh"
#include "compress/registry.hh"
#include "workload/generator.hh"
#include "workload/page_synth.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

struct Corpus
{
    std::size_t hotBytes = 0;
    std::size_t warmBytes = 0;
    std::size_t coldBytes = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("fig12", argc, argv);
    printBanner(std::cout,
                "Fig. 12: comp/decomp latency (ms) of each app's "
                "trace data under the schemes' chunk policies (LZO)");

    TimingModel timing;
    auto codec = makeCodec(CodecKind::Lzo);
    const CodecCost &cost = codec->cost();

    const std::vector<AriadneConfig> configs = {
        AriadneConfig::parse("EHL-1K-2K-16K"),
        AriadneConfig::parse("AL-512-2K-16K"),
    };

    ReportTable table({"App", "ZRAM comp", "ZRAM decomp",
                       "EHL-1K-2K-16K comp", "EHL-1K-2K-16K decomp",
                       "AL-512-2K-16K comp", "AL-512-2K-16K decomp"});

    for (const auto &name : plottedApps()) {
        AppProfile profile = standardApp(name);
        Corpus c;

        driver::ScenarioSpec spec = makeSpec("dram");
        spec.name = name + "/workload";
        spec.apps = {name};
        spec.program.push_back(driver::Event::custom(0));

        // Ground-truth hotness composition of the app's anonymous
        // data.
        driver::SessionHook probe =
            [&](MobileSystem &, SessionDriver &,
                driver::SessionResult &) {
                AppInstance inst(profile, evalScale, evalSeed);
                inst.coldLaunch();
                inst.execute(Tick{30} * 1000000000ULL);
                c.hotBytes = inst.hotSet().size() * pageSize;
                c.warmBytes = inst.warmSet().size() * pageSize;
                c.coldBytes = inst.coldSet().size() * pageSize;
            };
        report.add(runVariant(std::move(spec), {probe}));

        std::size_t total = c.hotBytes + c.warmBytes + c.coldBytes;
        std::size_t relaunch_relevant = c.hotBytes + c.warmBytes;

        // ZRAM: everything at one-page chunks, both directions.
        double zram_comp =
            static_cast<double>(timing.compressNs(cost, pageSize,
                                                  total)) /
            1e6 / evalScale;
        double zram_decomp =
            static_cast<double>(
                timing.decompressNs(cost, pageSize,
                                    relaunch_relevant)) /
            1e6 / evalScale;

        std::vector<std::string> row{
            name, ReportTable::num(zram_comp, 1),
            ReportTable::num(zram_decomp, 2)};

        for (const auto &cfg : configs) {
            double comp =
                static_cast<double>(
                    timing.compressNs(cost, cfg.smallSize,
                                      c.hotBytes) +
                    timing.compressNs(cost, cfg.mediumSize,
                                      c.warmBytes) +
                    timing.compressNs(cost, cfg.largeSize,
                                      c.coldBytes)) /
                1e6 / evalScale;
            double decomp =
                static_cast<double>(
                    timing.decompressNs(cost, cfg.smallSize,
                                        c.hotBytes) +
                    timing.decompressNs(cost, cfg.mediumSize,
                                        c.warmBytes)) /
                1e6 / evalScale;
            row.push_back(ReportTable::num(comp, 1));
            row.push_back(ReportTable::num(decomp, 2));
        }
        table.addRow(std::move(row));
    }
    table.print(std::cout);
    std::cout << "\nSmall-size chunks cut decompression latency for "
                 "relaunch data sharply; large-size cold compression "
                 "keeps total compression latency competitive.\n";
    report.addTable("comp_decomp_latency_ms", table);
    return report.finish();
}
