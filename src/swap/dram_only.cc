#include "swap/dram_only.hh"

namespace ariadne
{

SchemeInfo
dramOnlySchemeInfo()
{
    SchemeInfo info;
    info.key = "dram";
    info.displayName = "DRAM";
    info.description = "ideal all-in-DRAM baseline: no compression, "
                       "no swapping, no reclaim";
    info.unboundedDram = true;
    info.build = [](SwapContext ctx, const SchemeParams &, double) {
        return std::make_unique<DramOnlyScheme>(ctx);
    };
    return info;
}

} // namespace ariadne
