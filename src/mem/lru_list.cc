#include "mem/lru_list.hh"

#include "sim/log.hh"

namespace ariadne
{

void
LruList::pushFront(PageMeta &page)
{
    panicIf(page.lruOwner != nullptr,
            "pushFront: page already on a list");
    page.lruPrev = nullptr;
    page.lruNext = head;
    if (head)
        head->lruPrev = &page;
    head = &page;
    if (!tail)
        tail = &page;
    page.lruOwner = this;
    ++count;
    countOp();
}

void
LruList::pushBack(PageMeta &page)
{
    panicIf(page.lruOwner != nullptr, "pushBack: page already on a list");
    page.lruNext = nullptr;
    page.lruPrev = tail;
    if (tail)
        tail->lruNext = &page;
    tail = &page;
    if (!head)
        head = &page;
    page.lruOwner = this;
    ++count;
    countOp();
}

void
LruList::remove(PageMeta &page)
{
    panicIf(page.lruOwner != this, "remove: page not on this list");
    if (page.lruPrev)
        page.lruPrev->lruNext = page.lruNext;
    else
        head = page.lruNext;
    if (page.lruNext)
        page.lruNext->lruPrev = page.lruPrev;
    else
        tail = page.lruPrev;
    page.lruPrev = page.lruNext = nullptr;
    page.lruOwner = nullptr;
    --count;
    countOp();
}

void
LruList::touch(PageMeta &page)
{
    panicIf(page.lruOwner != this, "touch: page not on this list");
    if (head == &page) {
        countOp();
        return;
    }
    remove(page);
    pushFront(page);
}

PageMeta *
LruList::popBack()
{
    if (!tail)
        return nullptr;
    PageMeta *victim = tail;
    remove(*victim);
    return victim;
}

PageMeta *
LruList::popFront()
{
    if (!head)
        return nullptr;
    PageMeta *first = head;
    remove(*first);
    return first;
}

void
LruList::drainTo(LruList &dst)
{
    // Most recent first, appended to dst's tail: the drained pages
    // keep their relative recency and are all older than anything
    // already on dst.
    while (PageMeta *page = popFront())
        dst.pushBack(*page);
}

} // namespace ariadne
