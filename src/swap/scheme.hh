/**
 * @file
 * Swap-scheme interface and shared machinery.
 *
 * A SwapScheme decides where anonymous pages live (resident, zpool,
 * flash), picks reclaim victims, and services swap-in faults. The
 * surrounding MobileSystem drives it through page admissions, touches
 * and reclaim requests. Four implementations reproduce the paper's
 * evaluated configurations: DramOnlyScheme (ideal "DRAM"),
 * FlashSwapScheme ("SWAP"), ZramScheme ("ZRAM", optionally with
 * ZSWAP-style writeback) and core/AriadneScheme.
 */

#ifndef ARIADNE_SWAP_SCHEME_HH
#define ARIADNE_SWAP_SCHEME_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "mem/dram.hh"
#include "mem/flash.hh"
#include "mem/page.hh"
#include "mem/page_arena.hh"
#include "mem/zpool.hh"
#include "sim/clock.hh"
#include "sim/cpu_account.hh"
#include "sim/energy_model.hh"
#include "sim/stats.hh"
#include "sim/timing_model.hh"
#include "swap/page_compressor.hh"

namespace ariadne
{

/** Shared services every scheme operates against. */
struct SwapContext
{
    Clock &clock;
    const TimingModel &timing;
    CpuAccount &cpu;
    ActivityTotals &activity;
    Dram &dram;
    PageCompressor &compressor;
    /** Arena owning every PageMeta plus the SoA scan metadata
     * (level / location / lastAccess accessors). */
    PageArena &arena;
};

/** Per-app compression/decompression accounting (Figs. 11-13). */
struct CompStats
{
    Tick compNs = 0;
    Tick decompNs = 0;
    std::uint64_t inBytes = 0;   //!< uncompressed bytes compressed
    std::uint64_t outBytes = 0;  //!< compressed bytes produced
    std::uint64_t decompBytes = 0; //!< uncompressed bytes recovered
    std::uint64_t compOps = 0;
    std::uint64_t decompOps = 0;

    /** Compression ratio original/compressed (0 when empty). */
    double
    ratio() const noexcept
    {
        return outBytes ? static_cast<double>(inBytes) /
                              static_cast<double>(outBytes)
                        : 0.0;
    }

    /** Merge @p o into this. */
    void add(const CompStats &o) noexcept;
};

/**
 * Optional hotness-prediction capability of a scheme. The system and
 * the benches query it through SwapScheme::hotness() instead of
 * downcasting to a concrete scheme type, so any future scheme with
 * per-app hot-set knowledge (e.g. a TRRIP-style temperature
 * predictor) plugs into profile seeding and Fig. 14 scoring without
 * driver changes.
 */
class HotnessAware
{
  public:
    virtual ~HotnessAware() = default;

    /** Seed the per-app hot-set size profile (offline profiling). */
    virtual void seedProfile(AppId uid, std::size_t hot_pages) = 0;

    /** The scheme's current relaunch prediction for @p uid. */
    virtual std::vector<PageKey> predictedHotSet(AppId uid) const = 0;
};

/** Outcome of a swap-in fault. */
struct SwapInResult
{
    Tick latencyNs = 0;   //!< synchronous latency charged to the fault
    bool fromFlash = false;
    bool stagedHit = false; //!< served from the PreDecomp buffer
};

/** Abstract compressed-swap scheme. */
class SwapScheme
{
  public:
    explicit SwapScheme(SwapContext context) : ctx(context) {}
    virtual ~SwapScheme() = default;

    SwapScheme(const SwapScheme &) = delete;
    SwapScheme &operator=(const SwapScheme &) = delete;

    /** Scheme display name (used in reports). */
    virtual std::string name() const = 0;

    /** A freshly allocated page became resident. */
    virtual void onAdmit(PageMeta &page) = 0;

    /** A resident page was touched. */
    virtual void onAccess(PageMeta &page) = 0;

    /** Bring a non-resident page back; advances the clock. */
    virtual SwapInResult swapIn(PageMeta &page) = 0;

    /** Page is going away (app killed / freed). */
    virtual void onFree(PageMeta &page) = 0;

    /**
     * Evict at least @p pages resident pages.
     * @param direct True when called synchronously from a fault path
     * (advances the clock); false for background kswapd work.
     * @return pages actually freed.
     */
    virtual std::size_t reclaim(std::size_t pages, bool direct) = 0;

    /** App lifecycle hints. */
    virtual void onLaunch(AppId) {}
    virtual void onRelaunchStart(AppId) {}
    virtual void onRelaunchEnd(AppId) {}
    virtual void onBackground(AppId) {}

    /** Compressed bytes currently stored (zpool + flash). */
    virtual std::size_t compressedStoredBytes() const { return 0; }

    /** Underlying pool, when the scheme has one. */
    virtual const Zpool *zpool() const { return nullptr; }

    /** Underlying flash swap device, when the scheme has one. */
    virtual const FlashDevice *flash() const { return nullptr; }

    /** Resident page counts per hotness level, when the scheme
     * organizes pages that way (gauge sampling only). Returns false
     * — outputs untouched — otherwise. */
    virtual bool
    levelPopulations(std::size_t &, std::size_t &, std::size_t &) const
    {
        return false;
    }

    /** Hotness-prediction capability, when the scheme has one. */
    virtual HotnessAware *hotness() noexcept { return nullptr; }
    const HotnessAware *
    hotness() const noexcept
    {
        return const_cast<SwapScheme *>(this)->hotness();
    }

    /** Per-app compression statistics. */
    const CompStats &appStats(AppId uid) const;

    /** Aggregate compression statistics. */
    CompStats totalStats() const;

    /** Pages dropped under extreme pressure (potential app kill). */
    std::uint64_t lostPages() const noexcept { return lost; }

    /** Direct-reclaim invocations (on-demand compression events). */
    std::uint64_t directReclaims() const noexcept { return directRuns; }

    /** LRU list operations performed by this scheme. */
    std::uint64_t lruOps() const noexcept { return lruOpCounter.value(); }

    /**
     * CPU spent in proactive background reclaim (onBackground work:
     * the vendors' periodic compression for ZRAM, the AL scenario's
     * hot-list compression for Ariadne). Runs on the reclaim daemon,
     * so Fig. 3 counts it alongside kswapd.
     */
    Tick backgroundReclaimCpuNs() const noexcept { return bgReclaimNs; }

  protected:
    /**
     * Account one compression of @p in_bytes -> @p out_bytes at
     * @p chunk_bytes chunks: model CPU time, energy-relevant DRAM
     * traffic, per-app stats; advances the clock when @p synchronous.
     * @return modeled compression time.
     */
    Tick chargeCompression(AppId uid, const CodecCost &cost,
                           std::size_t chunk_bytes, std::size_t in_bytes,
                           std::size_t out_bytes, bool synchronous);

    /** Mirror of chargeCompression for decompression. */
    Tick chargeDecompression(AppId uid, const CodecCost &cost,
                             std::size_t chunk_bytes,
                             std::size_t out_bytes,
                             std::size_t stored_bytes,
                             bool synchronous);

    /**
     * Charge accumulated LRU operations since the last call. List
     * surgery is CPU-accounted but never advances the clock: a list
     * op is ~100x cheaper than a swap (§6.4) and its latency is
     * already folded into the fault/touch base costs.
     */
    void chargeLruOps(bool synchronous);

    SwapContext ctx;
    std::map<AppId, CompStats> perApp;
    Counter lruOpCounter;
    std::uint64_t lost = 0;
    std::uint64_t directRuns = 0;
    Tick bgReclaimNs = 0;

  private:
    std::uint64_t chargedLruOps = 0;
};

} // namespace ariadne

#endif // ARIADNE_SWAP_SCHEME_HH
