/**
 * @file
 * Intrusive O(1) LRU list over PageMeta records.
 *
 * HotnessOrg's cost argument rests on LRU list operations being ~100x
 * cheaper than swaps (§6.4); every operation here is O(1) and is
 * counted so experiments can report list-operation overhead exactly.
 */

#ifndef ARIADNE_MEM_LRU_LIST_HH
#define ARIADNE_MEM_LRU_LIST_HH

#include <cstddef>

#include "mem/page.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace ariadne
{

/**
 * Doubly-linked intrusive LRU list. Front = most recently used,
 * back = least recently used. A page may be on at most one list; the
 * owner pointer catches violations.
 */
class LruList
{
  public:
    /**
     * @param op_counter Optional shared counter incremented once per
     * list mutation (used to account list-op CPU cost).
     */
    explicit LruList(Counter *op_counter = nullptr) noexcept
        : ops(op_counter)
    {}

    LruList(const LruList &) = delete;
    LruList &operator=(const LruList &) = delete;

    /** Insert @p page at the MRU end; page must not be on any list.
     * Inline: list surgery runs once or twice per simulated page
     * touch, so these are the fleet driver's hottest leaf calls. */
    void
    pushFront(PageMeta &page)
    {
        panicIf(page.lruOwner != nullptr,
                "pushFront: page already on a list");
        page.lruPrev = nullptr;
        page.lruNext = head;
        if (head)
            head->lruPrev = &page;
        head = &page;
        if (!tail)
            tail = &page;
        page.lruOwner = this;
        ++count;
        countOp();
    }

    /** Insert @p page at the LRU end; page must not be on any list. */
    void
    pushBack(PageMeta &page)
    {
        panicIf(page.lruOwner != nullptr,
                "pushBack: page already on a list");
        page.lruNext = nullptr;
        page.lruPrev = tail;
        if (tail)
            tail->lruNext = &page;
        tail = &page;
        if (!head)
            head = &page;
        page.lruOwner = this;
        ++count;
        countOp();
    }

    /** Unlink @p page; it must be on this list. */
    void
    remove(PageMeta &page)
    {
        panicIf(page.lruOwner != this, "remove: page not on this list");
        if (page.lruPrev)
            page.lruPrev->lruNext = page.lruNext;
        else
            head = page.lruNext;
        if (page.lruNext)
            page.lruNext->lruPrev = page.lruPrev;
        else
            tail = page.lruPrev;
        page.lruPrev = page.lruNext = nullptr;
        page.lruOwner = nullptr;
        --count;
        countOp();
    }

    /** Move @p page (already on this list) to the MRU end. */
    void
    touch(PageMeta &page)
    {
        panicIf(page.lruOwner != this, "touch: page not on this list");
        if (head == &page) {
            countOp();
            return;
        }
        remove(page);
        pushFront(page);
    }

    /** Remove and return the LRU victim; nullptr when empty. */
    PageMeta *
    popBack()
    {
        if (!tail)
            return nullptr;
        PageMeta *victim = tail;
        remove(*victim);
        return victim;
    }

    /** Remove and return the MRU page; nullptr when empty. */
    PageMeta *
    popFront()
    {
        if (!head)
            return nullptr;
        PageMeta *first = head;
        remove(*first);
        return first;
    }

    /** MRU page without removal; nullptr when empty. */
    PageMeta *front() const noexcept { return head; }

    /** LRU page without removal; nullptr when empty. */
    PageMeta *back() const noexcept { return tail; }

    std::size_t size() const noexcept { return count; }
    bool empty() const noexcept { return count == 0; }

    /** True when @p page is linked on this particular list. */
    bool
    contains(const PageMeta &page) const noexcept
    {
        return page.lruOwner == this;
    }

    /**
     * Move every page to the back of @p dst in LRU order, preserving
     * relative recency (this list becomes empty). Used by HotnessOrg's
     * relaunch update, which demotes the whole old hot list to warm.
     */
    void drainTo(LruList &dst);

  private:
    void countOp() noexcept
    {
        if (ops)
            ops->inc();
    }

    PageMeta *head = nullptr;
    PageMeta *tail = nullptr;
    std::size_t count = 0;
    Counter *ops;
};

} // namespace ariadne

#endif // ARIADNE_MEM_LRU_LIST_HH
