/**
 * @file
 * Fig. 6: compression latency, decompression latency, and
 * compression ratio versus compression chunk size (128 B .. 128 KB)
 * for LZ4 and LZO on mobile anonymous data.
 *
 * Paper result: ratio grows 1.7 -> 3.9 with chunk size; 128 B
 * compression is 59.2x (LZ4) / 41.8x (LZO) faster than 128 KB for
 * the same 576 MB of data.
 *
 * Latency comes from the calibrated TimingModel (the device
 * substitute); the ratio is a real measurement of our from-scratch
 * codecs over synthesized anonymous pages (a 36 MB sample of the
 * 576 MB corpus — the ratio is volume-independent). Each codec is
 * one ScenarioSpec variant whose `custom` hook measures the shared
 * corpus.
 */

#include "bench_common.hh"
#include "compress/chunked.hh"
#include "compress/registry.hh"
#include "workload/page_synth.hh"

using namespace ariadne;
using namespace ariadne::bench;

namespace
{

/**
 * Synthesize @p pages anonymous pages from the ten apps. Pages are
 * laid out in contiguous per-app segments, matching how reclaim
 * batches drain one application's LRU lists at a time.
 */
std::vector<std::uint8_t>
makeCorpus(std::size_t pages)
{
    auto apps = standardApps();
    PageSynthesizer synth(apps);
    std::vector<std::uint8_t> corpus(pages * pageSize);
    std::size_t per_app = pages / apps.size();
    for (std::size_t i = 0; i < pages; ++i) {
        const auto &app =
            apps[std::min(per_app ? i / per_app : 0,
                          apps.size() - 1)];
        PageKey key{app.uid, static_cast<Pfn>(i)};
        synth.materialize(key, 0,
                          {corpus.data() + i * pageSize, pageSize});
    }
    return corpus;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchReport report("fig6", argc, argv);
    printBanner(std::cout,
                "Fig. 6: comp/decomp latency and ratio vs chunk size");

    constexpr std::size_t corpusPages = 9216; // 36 MiB sample
    constexpr std::size_t fullBytes =
        std::size_t{576} * 1024 * 1024; // paper corpus
    auto corpus = makeCorpus(corpusPages);
    TimingModel timing;

    for (CodecKind kind : {CodecKind::Lz4, CodecKind::Lzo}) {
        auto codec = makeCodec(kind);
        std::cout << "\n--- " << codec->name()
                  << " (576 MB corpus; latency from device model, "
                     "ratio measured) ---\n";
        ReportTable table({"Chunk", "CompTime (ms)", "DecompTime (ms)",
                           "CompRatio"});

        double t128 = 0.0, t128k = 0.0;

        driver::ScenarioSpec spec = makeSpec("zram");
        spec.name = std::string(codec->name()) + "/chunk-sweep";
        spec.program.push_back(driver::Event::custom(0));

        driver::SessionHook sweep_chunks =
            [&](MobileSystem &, SessionDriver &,
                driver::SessionResult &) {
                for (std::size_t chunk = 128; chunk <= 128 * 1024;
                     chunk *= 2) {
                    auto frame = ChunkedFrame::compress(
                        *codec, {corpus.data(), corpus.size()}, chunk);
                    double ratio =
                        static_cast<double>(corpus.size()) /
                        static_cast<double>(frame.size());
                    double comp_ms =
                        static_cast<double>(
                            timing.compressNs(codec->cost(), chunk,
                                              fullBytes)) /
                        1e6;
                    double decomp_ms =
                        static_cast<double>(
                            timing.decompressNs(codec->cost(), chunk,
                                                fullBytes)) /
                        1e6;
                    if (chunk == 128)
                        t128 = comp_ms;
                    if (chunk == 128 * 1024)
                        t128k = comp_ms;

                    std::string label =
                        chunk >= 1024
                            ? std::to_string(chunk / 1024) + "K"
                            : std::to_string(chunk) + "B";
                    table.addRow({label, ReportTable::num(comp_ms, 1),
                                  ReportTable::num(decomp_ms, 1),
                                  ReportTable::num(ratio, 2)});
                }
            };
        report.add(runVariant(std::move(spec), {sweep_chunks}));

        table.print(std::cout);
        std::cout << "128KB/128B compression-time ratio: "
                  << ReportTable::num(t128k / t128, 1)
                  << (kind == CodecKind::Lz4 ? "  (paper: 59.2x)\n"
                                             : "  (paper: 41.8x)\n");
        report.addTable(codec->name(), table);
    }
    return report.finish();
}
