/** @file Unit tests for the per-app relaunch profile store. */

#include <gtest/gtest.h>

#include "core/profile_store.hh"

using namespace ariadne;

TEST(ProfileStore, FallbackForUnknownApps)
{
    ProfileStore store(1234);
    EXPECT_EQ(store.hotInitPages(42), 1234u);
    EXPECT_EQ(store.size(), 0u);
}

TEST(ProfileStore, SeedOverridesFallback)
{
    ProfileStore store(1000);
    store.seed(1, 5000);
    EXPECT_EQ(store.hotInitPages(1), 5000u);
    EXPECT_EQ(store.hotInitPages(2), 1000u);
    EXPECT_EQ(store.size(), 1u);
}

TEST(ProfileStore, EmaConvergesTowardObservations)
{
    ProfileStore store(0);
    store.seed(1, 1000);
    for (int i = 0; i < 10; ++i)
        store.recordRelaunch(1, 2000);
    EXPECT_NEAR(static_cast<double>(store.hotInitPages(1)), 2000.0,
                4.0);
}

TEST(ProfileStore, FirstObservationCreatesEntry)
{
    ProfileStore store(100);
    store.recordRelaunch(7, 640);
    EXPECT_EQ(store.hotInitPages(7), 640u);
}

TEST(ProfileStore, EmaIsAverageOfOldAndNew)
{
    ProfileStore store(0);
    store.seed(3, 100);
    store.recordRelaunch(3, 200);
    EXPECT_EQ(store.hotInitPages(3), 150u);
}
