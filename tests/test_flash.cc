/** @file Unit tests for the flash swap device model. */

#include <gtest/gtest.h>

#include "mem/flash.hh"

using namespace ariadne;

TEST(Flash, WriteReadFreeLifecycle)
{
    FlashDevice dev(1 << 20);
    FlashSlot slot = dev.write(4096);
    ASSERT_NE(slot, invalidFlashSlot);
    EXPECT_TRUE(dev.live(slot));
    EXPECT_EQ(dev.slotSize(slot), 4096u);
    EXPECT_EQ(dev.read(slot), 4096u);
    dev.free(slot);
    EXPECT_FALSE(dev.live(slot));
    EXPECT_EQ(dev.liveBytes(), 0u);
}

TEST(Flash, CapacityEnforced)
{
    FlashDevice dev(8192);
    EXPECT_NE(dev.write(4096), invalidFlashSlot);
    EXPECT_NE(dev.write(4096), invalidFlashSlot);
    EXPECT_EQ(dev.write(1), invalidFlashSlot);
}

TEST(Flash, ZeroByteWriteRejected)
{
    FlashDevice dev(8192);
    EXPECT_EQ(dev.write(0), invalidFlashSlot);
}

TEST(Flash, EnduranceCounters)
{
    FlashDevice dev(1 << 20, 1.5);
    dev.write(1000);
    dev.write(2000);
    EXPECT_EQ(dev.hostWriteBytes(), 3000u);
    EXPECT_EQ(dev.deviceWriteBytes(), 4500u); // 1.5x amplification
    EXPECT_EQ(dev.writeOps(), 2u);
}

TEST(Flash, ReadCounters)
{
    FlashDevice dev(1 << 20);
    FlashSlot a = dev.write(500);
    dev.read(a);
    dev.read(a);
    EXPECT_EQ(dev.readBytes(), 1000u);
    EXPECT_EQ(dev.readOps(), 2u);
}

TEST(Flash, FreeingMakesRoom)
{
    FlashDevice dev(4096);
    FlashSlot a = dev.write(4096);
    EXPECT_EQ(dev.write(100), invalidFlashSlot);
    dev.free(a);
    EXPECT_NE(dev.write(100), invalidFlashSlot);
}

TEST(Flash, CompressedWritesWearLess)
{
    // The paper's flash-lifetime argument: compressed swap-out writes
    // fewer bytes than raw swap-out for the same page count.
    FlashDevice raw(1 << 24), compressed(1 << 24);
    for (int i = 0; i < 100; ++i) {
        raw.write(pageSize);
        compressed.write(pageSize / 2); // ratio 2 compressed pages
    }
    EXPECT_EQ(compressed.deviceWriteBytes() * 2,
              raw.deviceWriteBytes());
}

TEST(FlashDeath, ReadDeadSlotPanics)
{
    FlashDevice dev(1 << 20);
    EXPECT_DEATH(dev.read(999), "dead");
}

TEST(FlashDeath, BadWriteAmplificationFatal)
{
    EXPECT_DEATH(FlashDevice(1 << 20, 0.5), "amplification");
}
