/** @file Unit tests for the from-scratch LZO-class codec. */

#include <gtest/gtest.h>

#include "codec_test_util.hh"
#include "compress/lzo.hh"

using namespace ariadne;
using namespace ariadne::testutil;

TEST(Lzo, EmptyInput)
{
    LzoCodec codec;
    std::vector<std::uint8_t> src;
    std::vector<std::uint8_t> comp(codec.compressBound(0));
    std::size_t csize =
        codec.compress({src.data(), 0}, {comp.data(), comp.size()});
    std::vector<std::uint8_t> out;
    EXPECT_EQ(codec.decompress({comp.data(), csize}, {out.data(), 0}),
              0u);
}

TEST(Lzo, SingleByteAndTwoBytes)
{
    LzoCodec codec;
    std::vector<std::uint8_t> one{0x11};
    std::vector<std::uint8_t> two{0x11, 0x22};
    EXPECT_EQ(roundtrip(codec, one), one);
    EXPECT_EQ(roundtrip(codec, two), two);
}

TEST(Lzo, RepetitiveCompresses)
{
    LzoCodec codec;
    auto src = repetitiveBuffer(4096);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LT(csize, src.size() / 2);
}

TEST(Lzo, ZerosCompress)
{
    LzoCodec codec;
    std::vector<std::uint8_t> src(4096, 0);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LT(csize, src.size() / 4);
}

TEST(Lzo, RandomRoundtrips)
{
    LzoCodec codec;
    auto src = randomBuffer(8192, 21);
    std::size_t csize = 0;
    EXPECT_EQ(roundtrip(codec, src, &csize), src);
    EXPECT_LE(csize, codec.compressBound(src.size()));
}

TEST(Lzo, MaxLengthMatches)
{
    // Runs much longer than maxMatch (18) are split across items.
    LzoCodec codec;
    std::vector<std::uint8_t> src(1000, 0x5A);
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Lzo, WindowLimitRespected)
{
    // Matches farther than the 4 KB window must not be referenced;
    // pattern repeats every 5000 bytes to land outside the window.
    LzoCodec codec;
    auto unique = randomBuffer(5000, 33);
    std::vector<std::uint8_t> src(unique);
    src.insert(src.end(), unique.begin(), unique.end());
    EXPECT_EQ(roundtrip(codec, src), src);
}

TEST(Lzo, DecompressRejectsTruncation)
{
    LzoCodec codec;
    auto src = mixedBuffer(2048, 5);
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize = codec.compress({src.data(), src.size()},
                                       {comp.data(), comp.size()});
    std::vector<std::uint8_t> out(src.size());
    for (std::size_t cut = 1; cut < 8; ++cut) {
        std::size_t got = codec.decompress(
            {comp.data(), csize - cut}, {out.data(), out.size()});
        EXPECT_LT(got, src.size());
    }
}

TEST(Lzo, DecompressRejectsShortOutput)
{
    LzoCodec codec;
    auto src = repetitiveBuffer(2048);
    std::vector<std::uint8_t> comp(codec.compressBound(src.size()));
    std::size_t csize = codec.compress({src.data(), src.size()},
                                       {comp.data(), comp.size()});
    std::vector<std::uint8_t> out(100);
    EXPECT_EQ(codec.decompress({comp.data(), csize},
                               {out.data(), out.size()}),
              0u);
}

TEST(Lzo, CompressFailsOnTinyDestination)
{
    LzoCodec codec;
    auto src = randomBuffer(512, 2);
    std::vector<std::uint8_t> tiny(4);
    EXPECT_EQ(codec.compress({src.data(), src.size()},
                             {tiny.data(), tiny.size()}),
              0u);
}

TEST(Lzo, MetadataCorrect)
{
    LzoCodec codec;
    EXPECT_EQ(codec.kind(), CodecKind::Lzo);
    EXPECT_EQ(codec.name(), "lzo");
    EXPECT_GT(codec.compressBound(800), 800u);
}
