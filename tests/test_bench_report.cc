/** @file Unit tests for BENCH/metrics JSON schemas and build info. */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "report/json_reader.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/build_info.hh"
#include "telemetry/telemetry.hh"

using namespace ariadne;
using telemetry::BenchReport;
using telemetry::RunMeta;

namespace
{

RunMeta
testMeta()
{
    RunMeta meta = RunMeta::current();
    meta.threads = 4;
    meta.scenario = "unit";
    meta.scenarioHash = 0xdeadbeefULL;
    return meta;
}

} // namespace

TEST(BuildInfo, AlwaysNonEmpty)
{
    ASSERT_NE(telemetry::gitSha(), nullptr);
    ASSERT_NE(telemetry::buildType(), nullptr);
    EXPECT_GT(std::strlen(telemetry::gitSha()), 0u);
    EXPECT_GT(std::strlen(telemetry::buildType()), 0u);
}

TEST(BenchReportJson, EmitsStableSchema)
{
    telemetry::setEnabled(true);
    telemetry::Registry::global().reset();
    telemetry::Counter c("bench_test.counter");
    telemetry::DurationProbe d("bench_test.duration");
    c.add(3);
    d.record(500);

    BenchReport report;
    report.bench = "unit";
    report.meta = testMeta();
    report.wallSeconds = 1.5;
    report.peakRssBytes = 1 << 20;
    report.rates.emplace_back("sessionsPerSec", 42.5);
    report.totals.emplace_back("sessions", 64);
    report.telemetry = telemetry::Registry::global().snapshot();
    telemetry::setEnabled(false);
    telemetry::Registry::global().reset();

    std::ostringstream os;
    report.writeJson(os);
    report::JsonValue doc = report::JsonValue::parseText(os.str());

    EXPECT_EQ(doc.at("ariadneBench").asU64(), 1u);
    EXPECT_EQ(doc.at("bench").asString(), "unit");
    EXPECT_EQ(doc.at("meta").at("threads").asU64(), 4u);
    EXPECT_EQ(doc.at("meta").at("scenario").asString(), "unit");
    EXPECT_EQ(doc.at("meta").at("scenarioHash").asU64(),
              0xdeadbeefULL);
    EXPECT_EQ(doc.at("meta").at("gitSha").asString(),
              telemetry::gitSha());
    EXPECT_EQ(doc.at("meta").at("buildType").asString(),
              telemetry::buildType());
    EXPECT_DOUBLE_EQ(doc.at("wallSeconds").asDouble(), 1.5);
    EXPECT_EQ(doc.at("peakRssBytes").asU64(), 1u << 20);
    EXPECT_DOUBLE_EQ(doc.at("rates").at("sessionsPerSec").asDouble(),
                     42.5);
    EXPECT_EQ(doc.at("totals").at("sessions").asU64(), 64u);
    EXPECT_EQ(doc.at("counters").at("bench_test.counter").asU64(), 3u);
    const auto &dur = doc.at("durations").at("bench_test.duration");
    EXPECT_EQ(dur.at("count").asU64(), 1u);
    EXPECT_EQ(dur.at("totalNs").asU64(), 500u);
    EXPECT_DOUBLE_EQ(dur.at("meanNs").asDouble(), 500.0);
}

TEST(BenchReportJson, IdenticalInputsSerializeIdentically)
{
    BenchReport report;
    report.bench = "stable";
    report.meta = testMeta();
    report.wallSeconds = 0.25;
    report.rates.emplace_back("r", 1.0 / 3.0);

    std::ostringstream a, b;
    report.writeJson(a);
    report.writeJson(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(MetricsJson, EmitsMetaAndSnapshot)
{
    telemetry::setEnabled(true);
    telemetry::Registry::global().reset();
    telemetry::Counter c("metrics_test.counter");
    c.add(11);
    auto snap = telemetry::Registry::global().snapshot();
    telemetry::setEnabled(false);
    telemetry::Registry::global().reset();

    std::ostringstream os;
    telemetry::writeMetricsJson(os, testMeta(), snap);
    report::JsonValue doc = report::JsonValue::parseText(os.str());

    EXPECT_EQ(doc.at("ariadneMetrics").asU64(), 1u);
    EXPECT_EQ(doc.at("meta").at("scenario").asString(), "unit");
    EXPECT_EQ(doc.at("counters").at("metrics_test.counter").asU64(),
              11u);
    EXPECT_TRUE(doc.find("durations") != nullptr);
}

TEST(PeakRss, ReportsPlausibleValue)
{
    std::uint64_t rss = telemetry::currentPeakRssBytes();
#if defined(__unix__) || defined(__APPLE__)
    // A running test binary occupies at least a megabyte.
    EXPECT_GT(rss, std::uint64_t{1} << 20);
#else
    (void)rss;
#endif
}
