/**
 * @file
 * AriadneScheme — the paper's contribution (§4).
 *
 * Combines the three techniques on top of the zpool/flash substrate:
 *
 *  - HotnessOrg picks reclaim victims cold-first (then warm, then —
 *    only under emergency direct reclaim in EHL mode — hot);
 *  - AdaptiveComp compresses victims at a hotness-dependent chunk
 *    size, batching coldUnitPages() cold pages into one large unit;
 *  - PreDecomp speculatively decompresses the next object in zpool
 *    sector order into a small staging buffer during faults, hiding
 *    decompression latency behind application work.
 *
 * When the zpool fills, compressed *cold* units spill to flash first
 * (the paper's "cold data is swapped out first" policy), keeping
 * writes small because they are compressed.
 */

#ifndef ARIADNE_CORE_ARIADNE_HH
#define ARIADNE_CORE_ARIADNE_HH

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>

#include "compress/registry.hh"
#include "core/adaptive_comp.hh"
#include "core/config.hh"
#include "core/hotness_org.hh"
#include "core/predecomp.hh"
#include "core/profile_store.hh"
#include "swap/scheme.hh"
#include "swap/scheme_registry.hh"

namespace ariadne
{

/** Hotness-aware, size-adaptive compressed swap scheme. */
class AriadneScheme : public SwapScheme, public HotnessAware
{
  public:
    AriadneScheme(SwapContext context, AriadneConfig config);

    std::string name() const override { return cfg.toString(); }

    void onAdmit(PageMeta &page) override;
    void onAccess(PageMeta &page) override;
    SwapInResult swapIn(PageMeta &page) override;
    void onFree(PageMeta &page) override;
    std::size_t reclaim(std::size_t pages, bool direct) override;

    void onRelaunchStart(AppId uid) override;
    void onRelaunchEnd(AppId uid) override;
    void onBackground(AppId uid) override;

    std::size_t compressedStoredBytes() const override;
    const Zpool *zpool() const override { return &pool; }
    const FlashDevice *flash() const override { return &flashDev; }

    /** Hotness capability (profile seeding, Fig. 14 scoring). */
    HotnessAware *hotness() noexcept override { return this; }

    bool
    levelPopulations(std::size_t &hot, std::size_t &warm,
                     std::size_t &cold) const override
    {
        hot = hotOrg.population(Hotness::Hot);
        warm = hotOrg.population(Hotness::Warm);
        cold = hotOrg.population(Hotness::Cold);
        return true;
    }

    /** Seed the per-app hot-set size profile (offline profiling). */
    void seedProfile(AppId uid, std::size_t hot_pages) override;

    /** The scheme's relaunch prediction for Fig. 14 scoring. */
    std::vector<PageKey> predictedHotSet(AppId uid) const override;

    /** PreDecomp staging statistics. */
    const PreDecomp &preDecomp() const noexcept { return stagingBuf; }

    /** Hotness organization (exposed for tests and analysis). */
    const HotnessOrg &hotnessOrg() const noexcept { return hotOrg; }

    /** Configuration in effect. */
    const AriadneConfig &config() const noexcept { return cfg; }

    /** Sector access log during swap-ins (locality analysis). */
    const std::vector<Sector> &
    sectorAccessLog() const noexcept
    {
        return sectorLog;
    }

    /** Swap-in faults by the hotness the unit was compressed at. */
    std::uint64_t
    faultsByLevel(Hotness level) const noexcept
    {
        return faultsPerLevel[static_cast<std::size_t>(level)];
    }

    /** Multi-page units pre-swapped ahead of use (PreDecomp). */
    std::uint64_t
    preSwappedUnits() const noexcept
    {
        return preSwapCount;
    }

    /** Clear analysis logs between scenario phases. */
    void clearLogs() { sectorLog.clear(); }

  private:
    /** Compress a batch of same-app victims into one unit. */
    void compressUnit(std::vector<PageMeta *> batch, Hotness level,
                      bool synchronous);

    /** compressUnit with the unit's compressed size already known
     * (batch sizing paths pre-compute it via compressedSizeEach). */
    void compressUnitPresized(std::vector<PageMeta *> batch,
                              Hotness level, bool synchronous,
                              std::size_t csize);

    /** Spill compressed units to flash until @p csize fits. */
    bool ensureZpoolSpace(std::size_t csize, bool synchronous);

    /** Write one unit's object back to flash; pages -> Flash. */
    bool writebackUnit(UnitId id, bool synchronous);

    /** Try to stage / pre-swap the data owning zpool object @p obj. */
    void tryStage(ZObjectId obj);

    /** Remember that touching @p page should speculate on @p next. */
    void armPrediction(PageMeta &page, ZObjectId next);

    /** Fire and clear a pending prediction for @p page, if any. */
    void firePrediction(const PageMeta &page);

    /** Make the pages of @p unit resident; faulting page is @p hit. */
    void residentizeUnit(CompUnit &unit, PageMeta *hit);

    /** Allocate one resident page, direct-reclaiming if needed. */
    void allocateResident();

    AriadneConfig cfg;
    std::unique_ptr<Codec> codec;
    Zpool pool;
    FlashDevice flashDev;
    ProfileStore profiles;
    HotnessOrg hotOrg;
    AdaptiveComp units;
    PreDecomp stagingBuf;

    /** Writeback order: cold units first, then warm/hot units. */
    std::deque<UnitId> coldUnitFifo;
    std::deque<UnitId> pageUnitFifo;

    std::vector<Sector> sectorLog;
    std::array<std::uint64_t, 3> faultsPerLevel{};

    /**
     * Prediction chain: after a speculative pre-swap, the first touch
     * of a pre-swapped page triggers speculation on the following
     * object so sequential runs keep exactly one unit of lookahead.
     */
    std::unordered_map<const PageMeta *, ZObjectId> pendingPredictions;
    std::uint64_t preSwapCount = 0;
};

/** Registry entry for `scheme = ariadne` (see scheme_registry.cc). */
SchemeInfo ariadneSchemeInfo();

} // namespace ariadne

#endif // ARIADNE_CORE_ARIADNE_HH
