#include "sim/cpu_account.hh"

namespace ariadne
{

const char *
cpuRoleName(CpuRole role) noexcept
{
    switch (role) {
      case CpuRole::Kswapd: return "kswapd";
      case CpuRole::Compression: return "compression";
      case CpuRole::Decompression: return "decompression";
      case CpuRole::FaultPath: return "faultPath";
      case CpuRole::AppExecution: return "appExecution";
      case CpuRole::FileWriteback: return "fileWriteback";
      case CpuRole::IoSubmit: return "ioSubmit";
      default: return "unknown";
    }
}

} // namespace ariadne
