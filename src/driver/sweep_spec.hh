/**
 * @file
 * Declarative description of a multi-scenario sweep: an ordered list
 * of named ScenarioSpec variants compared side by side in one report
 * (scheme / config / scale axes, the §6 figure methodology).
 *
 * The config format extends the scenario format with sections. Lines
 * before the first `variant =` line form the *base* scenario every
 * variant inherits; each `variant = NAME` line starts a section whose
 * `key = value` lines override the base. A variant that declares any
 * `event` line replaces the base program wholesale (programs are
 * traces — merging them would be meaningless). The workload axis
 * (`workload`, `apps`, the `population_*` keys) is per-variant too,
 * so one sweep can compare app mixes or whole synthetic populations
 * side by side (scenarios/sweep_mixes.cfg); a variant that switches
 * to `workload = synthetic` must not inherit a base program, so keep
 * events in the program variants of such sweeps:
 *
 *     sweep = scheme-comparison
 *     scale = 0.0625
 *     seed = 42
 *     fleet = 8
 *     event = warmup
 *     event = repeat 40
 *     event =   switch_next 2s 1s
 *     event = end
 *
 *     variant = zram
 *     scheme = zram
 *
 *     variant = ariadne
 *     scheme = ariadne
 *     ariadne = EHL-1K-2K-16K
 *
 * Parse errors throw SpecError with the offending file line, exactly
 * like ScenarioSpec.
 */

#ifndef ARIADNE_DRIVER_SWEEP_SPEC_HH
#define ARIADNE_DRIVER_SWEEP_SPEC_HH

#include "driver/scenario_spec.hh"

namespace ariadne::driver
{

/** Ordered list of named scenario variants run side by side. */
struct SweepSpec
{
    std::string name = "sweep";
    /** Variants in declaration order; names are unique. */
    std::vector<ScenarioSpec> variants;

    /** Serialize to the config format; parse(toString()) == *this. */
    std::string toString() const;

    /** Parse the config format; throws SpecError on invalid input. */
    static SweepSpec parse(std::istream &in);

    /** Parse from a string (convenience over the stream overload). */
    static SweepSpec parseString(const std::string &text);

    /** Load and parse a config file; throws SpecError when
     * unreadable. */
    static SweepSpec loadFile(const std::string &path);

    bool operator==(const SweepSpec &o) const;
};

/**
 * Whether @p path/config text looks like a sweep config (contains a
 * top-level `sweep =` or `variant =` line). Lets the CLI pick the
 * right parser without a flag when convenient.
 */
bool looksLikeSweepConfig(std::istream &in);

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_SWEEP_SPEC_HH
