#include "mem/zpool.hh"

#include <algorithm>

#include "sim/log.hh"

namespace ariadne
{

Zpool::Zpool(std::size_t capacity_bytes)
{
    std::size_t n_blocks = capacity_bytes / blockBytes;
    fatalIf(n_blocks == 0, "zpool smaller than one block");
    blocks.resize(n_blocks);
    // All blocks start free; bits past n_blocks stay zero forever.
    freeBits.assign((n_blocks + 63) / 64, ~std::uint64_t{0});
    if (n_blocks % 64)
        freeBits.back() = (std::uint64_t{1} << (n_blocks % 64)) - 1;
    freeBlockCount = n_blocks;
    std::size_t n_classes = blockBytes / classStep;
    openBlock.assign(n_classes, UINT32_MAX);
    partialBlocks.resize(n_classes);
}

void
Zpool::setBlockFree(std::uint32_t b) noexcept
{
    freeBits[b >> 6] |= std::uint64_t{1} << (b & 63);
    ++freeBlockCount;
    if ((b >> 6) < freeScanHint)
        freeScanHint = b >> 6;
}

void
Zpool::clearBlockFree(std::uint32_t b) noexcept
{
    freeBits[b >> 6] &= ~(std::uint64_t{1} << (b & 63));
    --freeBlockCount;
}

std::size_t
Zpool::classIndex(std::size_t csize) noexcept
{
    if (csize == 0)
        csize = 1;
    return (csize + classStep - 1) / classStep - 1;
}

std::size_t
Zpool::classSlotSize(std::size_t clazz) noexcept
{
    return (clazz + 1) * classStep;
}

ZObjectId
Zpool::allocObjectRecord()
{
    if (!freeObjectIds.empty()) {
        ZObjectId id = freeObjectIds.back();
        freeObjectIds.pop_back();
        return id;
    }
    objects.emplace_back();
    return objects.size() - 1;
}

std::uint32_t
Zpool::takeFreeBlock()
{
    panicIf(freeBlockCount == 0, "takeFreeBlock on full pool");
    std::size_t w = freeScanHint;
    while (freeBits[w] == 0)
        ++w;
    freeScanHint = w;
    auto bit = static_cast<unsigned>(__builtin_ctzll(freeBits[w]));
    auto idx = static_cast<std::uint32_t>(w * 64 + bit);
    clearBlockFree(idx);
    ++usedBlocks;
    return idx;
}

bool
Zpool::findHugeRun(std::size_t span, std::uint32_t &start) const
{
    // First (lowest-start) run of `span` consecutive free blocks,
    // same answer the old ascending-set scan gave. Whole zero/one
    // words are consumed 64 blocks at a time.
    std::uint32_t run_start = 0;
    std::size_t run_len = 0;
    for (std::size_t w = 0; w < freeBits.size(); ++w) {
        std::uint64_t bits = freeBits[w];
        if (bits == 0) {
            run_len = 0;
            continue;
        }
        if (bits == ~std::uint64_t{0}) {
            if (run_len == 0)
                run_start = static_cast<std::uint32_t>(w * 64);
            run_len += 64;
            if (run_len >= span) {
                start = run_start;
                return true;
            }
            continue;
        }
        for (unsigned b = 0; b < 64; ++b) {
            if ((bits >> b) & 1) {
                if (run_len == 0)
                    run_start =
                        static_cast<std::uint32_t>(w * 64 + b);
                if (++run_len >= span) {
                    start = run_start;
                    return true;
                }
            } else {
                run_len = 0;
            }
        }
    }
    return false;
}

bool
Zpool::canFit(std::size_t csize) const
{
    if (csize > blockBytes) {
        std::size_t span = (csize + blockBytes - 1) / blockBytes;
        std::uint32_t start;
        return findHugeRun(span, start);
    }
    std::size_t clazz = classIndex(csize);
    if (openBlock[clazz] != UINT32_MAX)
        return true;
    if (!partialBlocks[clazz].empty())
        return true;
    return freeBlockCount != 0;
}

ZObjectId
Zpool::insert(std::size_t csize, std::uint64_t cookie_value)
{
    if (csize > blockBytes) {
        // Huge object: contiguous run of blocks.
        std::size_t span = (csize + blockBytes - 1) / blockBytes;
        panicIf(span > 255, "object too large for zpool");
        std::uint32_t start;
        if (!findHugeRun(span, start))
            return invalidObject;
        for (std::uint32_t b = start;
             b < start + static_cast<std::uint32_t>(span); ++b) {
            clearBlockFree(b);
            ++usedBlocks;
            blocks[b].clazz =
                (b == start) ? hugeHeadClass : hugeContClass;
            blocks[b].usedSlots = 1;
        }
        ZObjectId id = allocObjectRecord();
        Object &obj = objects[id];
        obj = Object{start, 0, true, static_cast<std::uint8_t>(span),
                     static_cast<std::uint32_t>(csize), cookie_value,
                     nextSector};
        sectorOrder.emplace(nextSector, id);
        ++nextSector;
        blocks[start].span = static_cast<std::uint8_t>(span);
        blocks[start].slots.assign(1, id);
        stored += csize;
        ++liveObjects;
        return id;
    }

    std::size_t clazz = classIndex(csize);
    std::uint32_t block_idx = UINT32_MAX;

    if (openBlock[clazz] != UINT32_MAX) {
        block_idx = openBlock[clazz];
    } else if (!partialBlocks[clazz].empty()) {
        block_idx = partialBlocks[clazz].back();
        partialBlocks[clazz].pop_back();
        openBlock[clazz] = block_idx;
    } else if (freeBlockCount != 0) {
        block_idx = takeFreeBlock();
        Block &blk = blocks[block_idx];
        blk.clazz = static_cast<std::int16_t>(clazz);
        blk.usedSlots = 0;
        blk.slots.assign(blockBytes / classSlotSize(clazz),
                         invalidObject);
        openBlock[clazz] = block_idx;
    } else {
        return invalidObject;
    }

    Block &blk = blocks[block_idx];
    // Find a free slot; the open block always has one.
    std::uint16_t slot = 0;
    for (; slot < blk.slots.size(); ++slot) {
        if (blk.slots[slot] == invalidObject)
            break;
    }
    panicIf(slot >= blk.slots.size(), "open block has no free slot");

    ZObjectId id = allocObjectRecord();
    objects[id] = Object{block_idx, slot, true, 0,
                         static_cast<std::uint32_t>(csize),
                         cookie_value, nextSector};
    sectorOrder.emplace(nextSector, id);
    ++nextSector;
    blk.slots[slot] = id;
    ++blk.usedSlots;
    if (blk.usedSlots == blk.slots.size())
        openBlock[clazz] = UINT32_MAX; // block full
    stored += csize;
    ++liveObjects;
    return id;
}

void
Zpool::erase(ZObjectId id)
{
    panicIf(!live(id), "erase of dead zpool object");
    Object &obj = objects[id];

    if (obj.span > 0) {
        for (std::uint32_t b = obj.block;
             b < obj.block + obj.span; ++b) {
            blocks[b].clazz = freeClass;
            blocks[b].usedSlots = 0;
            blocks[b].span = 0;
            blocks[b].slots.clear();
            setBlockFree(b);
            --usedBlocks;
        }
    } else {
        Block &blk = blocks[obj.block];
        std::size_t clazz = static_cast<std::size_t>(blk.clazz);
        blk.slots[obj.slot] = invalidObject;
        --blk.usedSlots;
        if (blk.usedSlots == 0) {
            // Whole block free again.
            if (openBlock[clazz] == obj.block)
                openBlock[clazz] = UINT32_MAX;
            auto &partial = partialBlocks[clazz];
            partial.erase(std::remove(partial.begin(), partial.end(),
                                      obj.block),
                          partial.end());
            blk.clazz = freeClass;
            blk.slots.clear();
            setBlockFree(obj.block);
            --usedBlocks;
        } else if (blk.usedSlots + 1 ==
                       static_cast<std::uint16_t>(blk.slots.size()) &&
                   openBlock[clazz] != obj.block) {
            // Was full, now has one hole: becomes a partial block.
            partialBlocks[clazz].push_back(obj.block);
        }
    }

    sectorOrder.erase(obj.sector);
    stored -= obj.csize;
    --liveObjects;
    obj.liveFlag = false;
    freeObjectIds.push_back(id);
}

bool
Zpool::live(ZObjectId id) const noexcept
{
    return id < objects.size() && objects[id].liveFlag;
}

std::size_t
Zpool::objectSize(ZObjectId id) const
{
    panicIf(!live(id), "objectSize of dead object");
    return objects[id].csize;
}

std::uint64_t
Zpool::cookie(ZObjectId id) const
{
    panicIf(!live(id), "cookie of dead object");
    return objects[id].cookie;
}

Sector
Zpool::sectorOf(ZObjectId id) const
{
    panicIf(!live(id), "sectorOf dead object");
    return objects[id].sector;
}

ZObjectId
Zpool::nextInSectorOrder(ZObjectId id, std::size_t max_gap) const
{
    panicIf(!live(id), "nextInSectorOrder of dead object");
    Sector sector = objects[id].sector;
    auto it = sectorOrder.upper_bound(sector);
    if (it == sectorOrder.end())
        return invalidObject;
    if (it->first - sector > max_gap)
        return invalidObject;
    return it->second;
}

double
Zpool::fragmentation() const noexcept
{
    std::size_t used = usedBytes();
    if (used == 0)
        return 0.0;
    return 1.0 - static_cast<double>(stored) /
                     static_cast<double>(used);
}

} // namespace ariadne
