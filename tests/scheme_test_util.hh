/** @file Shared harness for swap-scheme unit tests. */

#ifndef ARIADNE_TESTS_SCHEME_TEST_UTIL_HH
#define ARIADNE_TESTS_SCHEME_TEST_UTIL_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/dram.hh"
#include "swap/page_compressor.hh"
#include "swap/scheme.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

namespace ariadne::testutil
{

/**
 * Owns everything a SwapScheme needs: clock, accounts, DRAM budget,
 * synthesizer-backed compressor, and a page table.
 */
struct SchemeHarness
{
    explicit SchemeHarness(std::size_t dram_pages = 1024)
        : dram(dram_pages * pageSize, 0.02, 0.05),
          synth(standardApps()), compressor(synth)
    {}

    SwapContext
    context()
    {
        return SwapContext{clock,    timing, cpu,
                           activity, dram,   compressor};
    }

    /** Create (or fetch) a page owned by @p uid. */
    PageMeta &
    page(AppId uid, Pfn pfn, Hotness truth = Hotness::Cold)
    {
        PageKey key{uid, pfn};
        auto it = pages.find(key);
        if (it == pages.end()) {
            auto meta = std::make_unique<PageMeta>();
            meta->key = key;
            meta->truth = truth;
            it = pages.emplace(key, std::move(meta)).first;
        }
        return *it->second;
    }

    /** Admit @p n fresh resident pages for @p uid into @p scheme. */
    std::vector<PageMeta *>
    admitPages(SwapScheme &scheme, AppId uid, std::size_t n,
               Hotness truth = Hotness::Cold, Pfn first_pfn = 0)
    {
        std::vector<PageMeta *> result;
        for (std::size_t i = 0; i < n; ++i) {
            PageMeta &p = page(uid, first_pfn + i, truth);
            if (!dram.allocate(1)) {
                scheme.reclaim(32, true);
                EXPECT_TRUE(dram.allocate(1));
            }
            p.location = PageLocation::Resident;
            scheme.onAdmit(p);
            result.push_back(&p);
        }
        return result;
    }

    Clock clock;
    TimingModel timing;
    CpuAccount cpu;
    ActivityTotals activity;
    Dram dram;
    PageSynthesizer synth;
    PageCompressor compressor;
    std::unordered_map<PageKey, std::unique_ptr<PageMeta>, PageKeyHash>
        pages;
};

} // namespace ariadne::testutil

#endif // ARIADNE_TESTS_SCHEME_TEST_UTIL_HH
