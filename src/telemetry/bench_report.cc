#include "telemetry/bench_report.hh"

#include <ostream>

#include "driver/json_writer.hh"
#include "telemetry/build_info.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace ariadne::telemetry
{

namespace
{

void
writeMeta(driver::JsonWriter &w, const RunMeta &meta)
{
    w.key("meta");
    w.beginObject();
    w.field("gitSha", meta.gitSha);
    w.field("buildType", meta.buildType);
    w.field("threads", meta.threads);
    w.field("scenario", meta.scenario);
    w.field("scenarioHash", meta.scenarioHash);
    w.endObject();
}

void
writeSnapshot(driver::JsonWriter &w,
              const Registry::Snapshot &snapshot)
{
    w.key("counters");
    w.beginObject();
    for (const auto &c : snapshot.counters)
        w.field(c.name, c.value);
    w.endObject();

    w.key("durations");
    w.beginObject();
    for (const auto &d : snapshot.durations) {
        w.key(d.name);
        w.beginObject();
        w.field("count", d.count);
        w.field("totalNs", d.totalNs);
        w.field("meanNs", d.meanNs());
        w.endObject();
    }
    w.endObject();
}

} // namespace

RunMeta
RunMeta::current()
{
    RunMeta meta;
    meta.gitSha = telemetry::gitSha();
    meta.buildType = telemetry::buildType();
    return meta;
}

void
BenchReport::writeJson(std::ostream &os) const
{
    driver::JsonWriter w(os);
    w.beginObject();
    w.field("ariadneBench", schemaVersion);
    w.field("bench", bench);
    writeMeta(w, meta);
    w.field("wallSeconds", wallSeconds);
    w.field("peakRssBytes", peakRssBytes);

    w.key("rates");
    w.beginObject();
    for (const auto &[name, value] : rates)
        w.field(name, value);
    w.endObject();

    w.key("totals");
    w.beginObject();
    for (const auto &[name, value] : totals)
        w.field(name, value);
    w.endObject();

    writeSnapshot(w, telemetry);
    w.endObject();
    os << "\n";
}

void
writeMetricsJson(std::ostream &os, const RunMeta &meta,
                 const Registry::Snapshot &snapshot)
{
    driver::JsonWriter w(os);
    w.beginObject();
    w.field("ariadneMetrics", std::uint64_t{1});
    writeMeta(w, meta);
    writeSnapshot(w, snapshot);
    w.endObject();
    os << "\n";
}

std::uint64_t
currentPeakRssBytes() noexcept
{
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);
#else
    // Linux reports ru_maxrss in KiB.
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;
#endif
#else
    return 0;
#endif
}

} // namespace ariadne::telemetry
