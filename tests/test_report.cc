/** @file Unit tests for the report subsystem: JSON reader, shard
 * plans, metric states, partial reports and the merger. */

#include <gtest/gtest.h>

#include <sstream>

#include "driver/json_writer.hh"
#include "report/json_reader.hh"
#include "report/metric_state.hh"
#include "report/partial_report.hh"
#include "report/report_merger.hh"
#include "report/shard_plan.hh"

using namespace ariadne;
using namespace ariadne::report;

// --- JSON reader ----------------------------------------------------

TEST(JsonReader, ParsesNestedDocument)
{
    JsonValue v = JsonValue::parseText(R"({
        "name": "daily",
        "count": 3,
        "ok": true,
        "none": null,
        "list": [1, 2.5, -3e2],
        "obj": {"inner": "x"}
    })");
    EXPECT_EQ(v.at("name").asString(), "daily");
    EXPECT_EQ(v.at("count").asU64(), 3u);
    EXPECT_TRUE(v.at("ok").asBool());
    EXPECT_TRUE(v.at("none").isNull());
    ASSERT_EQ(v.at("list").asArray().size(), 3u);
    EXPECT_DOUBLE_EQ(v.at("list").asArray()[2].asDouble(), -300.0);
    EXPECT_EQ(v.at("obj").at("inner").asString(), "x");
    EXPECT_EQ(v.find("missing"), nullptr);
    EXPECT_THROW(v.at("missing"), JsonError);
}

TEST(JsonReader, ShortestRoundTripDoublesComeBackBitIdentical)
{
    for (double d : {0.1, 1.0 / 3.0, 6.02e23, 5e-324, 0.0625,
                     123456789.123456789}) {
        std::string text = driver::JsonWriter::formatDouble(d);
        JsonValue v = JsonValue::parseText("[" + text + "]");
        EXPECT_EQ(v.asArray()[0].asDouble(), d) << text;
    }
}

TEST(JsonReader, FullRangeIntegersSurvive)
{
    JsonValue v = JsonValue::parseText("[18446744073709551615, 42]");
    EXPECT_EQ(v.asArray()[0].asU64(), 18446744073709551615ULL);
    EXPECT_EQ(v.asArray()[1].asU64(), 42u);
    // Fractions and negatives are not integers.
    EXPECT_THROW(JsonValue::parseText("[1.5]").asArray()[0].asU64(),
                 JsonError);
    EXPECT_THROW(JsonValue::parseText("[-1]").asArray()[0].asU64(),
                 JsonError);
}

TEST(JsonReader, DecodesEscapes)
{
    JsonValue v = JsonValue::parseText(
        R"(["a\"b\\c\n\t", "Aé€", "\u00e9\ud83d\ude00"])");
    EXPECT_EQ(v.asArray()[0].asString(), "a\"b\\c\n\t");
    // Raw UTF-8 passes through verbatim...
    EXPECT_EQ(v.asArray()[1].asString(), "A\xc3\xa9\xe2\x82\xac");
    // ...and \uXXXX escapes (including surrogate pairs) decode to it.
    EXPECT_EQ(v.asArray()[2].asString(), "\xc3\xa9\xf0\x9f\x98\x80");
}

TEST(JsonReader, RejectsMalformedInput)
{
    EXPECT_THROW(JsonValue::parseText(""), JsonError);
    EXPECT_THROW(JsonValue::parseText("{"), JsonError);
    EXPECT_THROW(JsonValue::parseText("{\"a\" 1}"), JsonError);
    EXPECT_THROW(JsonValue::parseText("[1,]"), JsonError);
    EXPECT_THROW(JsonValue::parseText("[1] trailing"), JsonError);
    EXPECT_THROW(JsonValue::parseText("nul"), JsonError);
    EXPECT_THROW(JsonValue::parseText("\"unterminated"), JsonError);
    EXPECT_THROW(JsonValue::parseText("[01e]"), JsonError);
    // Deep nesting errors instead of smashing the stack.
    std::string bomb(100000, '[');
    EXPECT_THROW(JsonValue::parseText(bomb), JsonError);
}

// --- ShardPlan ------------------------------------------------------

TEST(ShardPlan, ParsesValidSpecs)
{
    ShardPlan p = ShardPlan::parse("2/4");
    EXPECT_EQ(p.index, 2u);
    EXPECT_EQ(p.count, 4u);
    EXPECT_EQ(p.toString(), "2/4");
    EXPECT_FALSE(p.unsharded());
    EXPECT_TRUE(ShardPlan::parse("1/1").unsharded());
}

TEST(ShardPlan, RejectsMalformedSpecs)
{
    for (const char *bad :
         {"0/4", "5/4", "a/b", "4", "1/0", "", "1/", "/4", "-1/4",
          "1/4/2", "1 / 4"})
        EXPECT_THROW(ShardPlan::parse(bad), ReportError) << bad;
}

TEST(ShardPlan, SessionRangesTileTheFleet)
{
    for (std::size_t count : {1u, 2u, 3u, 4u, 7u, 8u}) {
        for (std::size_t fleet : {0u, 1u, 2u, 5u, 8u, 64u, 1000u}) {
            std::size_t expected_begin = 0;
            for (std::size_t i = 1; i <= count; ++i) {
                auto [begin, end] =
                    ShardPlan{i, count}.sessionRange(fleet);
                EXPECT_EQ(begin, expected_begin);
                EXPECT_LE(begin, end);
                expected_begin = end;
            }
            EXPECT_EQ(expected_begin, fleet);
        }
    }
}

TEST(ShardPlan, HugeShardCountsDoNotOverflowTheRanges)
{
    // COUNT is unbounded user input; index*fleet must not wrap.
    const std::size_t huge = ~std::size_t{0} / 3 + 1;
    std::size_t covered = 0;
    for (std::size_t i : {std::size_t{1}, huge - 1, huge}) {
        auto [begin, end] = ShardPlan{i, huge}.sessionRange(3);
        EXPECT_LE(begin, end);
        EXPECT_LE(end, 3u);
        covered += end - begin;
    }
    EXPECT_LE(covered, 3u);
    auto [last_begin, last_end] = ShardPlan{huge, huge}.sessionRange(3);
    EXPECT_EQ(last_end, 3u);
    (void)last_begin;
}

TEST(ShardPlan, VariantsRoundRobinAcrossShards)
{
    const std::size_t count = 3;
    for (std::size_t j = 0; j < 10; ++j) {
        std::size_t owners = 0;
        for (std::size_t i = 1; i <= count; ++i)
            owners += ShardPlan{i, count}.ownsVariant(j) ? 1 : 0;
        EXPECT_EQ(owners, 1u) << "variant " << j;
    }
    EXPECT_TRUE((ShardPlan{1, 3}.ownsVariant(0)));
    EXPECT_TRUE((ShardPlan{2, 3}.ownsVariant(4)));
}

// --- MetricState ----------------------------------------------------

TEST(MetricState, ExactMergeReproducesTheUnshardedFold)
{
    MetricState whole(PercentileMode::Exact);
    MetricState a(PercentileMode::Exact), b(PercentileMode::Exact);
    for (int i = 0; i < 100; ++i) {
        double v = static_cast<double>((i * 13) % 41) + 0.125;
        whole.sample(v);
        (i < 37 ? a : b).sample(v);
    }
    a.merge(b);
    MetricSummary lhs = a.summarize(), rhs = whole.summarize();
    EXPECT_EQ(lhs.samples, rhs.samples);
    EXPECT_EQ(lhs.mean, rhs.mean);
    EXPECT_EQ(lhs.min, rhs.min);
    EXPECT_EQ(lhs.max, rhs.max);
    EXPECT_EQ(lhs.p50, rhs.p50);
    EXPECT_EQ(lhs.p90, rhs.p90);
    EXPECT_EQ(lhs.p99, rhs.p99);
}

TEST(MetricState, SketchModeRetainsNoSampleVector)
{
    MetricState state(PercentileMode::Sketch, 32);
    for (int i = 0; i < 10000; ++i)
        state.sample(static_cast<double>(i));
    EXPECT_TRUE(state.sampleValues().empty());
    EXPECT_LT(state.retainedValues(), 1000u);
    EXPECT_EQ(state.count(), 10000u);
    EXPECT_DOUBLE_EQ(state.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(state.maxValue(), 9999.0);
    MetricSummary s = state.summarize();
    EXPECT_GT(s.rankErrorBound, 0u);
    EXPECT_NEAR(s.p50, 5000.0,
                static_cast<double>(s.rankErrorBound));
}

TEST(MetricState, MergeRejectsMismatchedModes)
{
    MetricState exact(PercentileMode::Exact);
    MetricState sketch(PercentileMode::Sketch, 32);
    MetricState sketch64(PercentileMode::Sketch, 64);
    exact.sample(1.0);
    sketch.sample(1.0);
    EXPECT_THROW(exact.merge(sketch), ReportError);
    EXPECT_THROW(sketch.merge(sketch64), ReportError);
}

// --- Partial reports ------------------------------------------------

namespace
{

FleetPartial
samplePartial(PercentileMode mode, std::size_t begin, std::size_t end,
              std::uint64_t salt)
{
    FleetPartial p(mode, 32);
    p.scenario = "unit";
    p.scheme = "ZRAM";
    p.scale = 0.0625;
    p.seed = 0xdeadbeefcafef00dULL;
    p.fleet = 8;
    p.sessionsBegin = begin;
    p.sessionsEnd = end;
    for (std::size_t i = begin; i < end; ++i) {
        driver::SessionResult s;
        driver::RelaunchSample r;
        r.fullScaleMs =
            static_cast<double>((i * 131 + salt) % 97) + 0.5;
        s.relaunches.push_back(r);
        s.kswapdCpuNs = 1000000 * (i + 1);
        s.energyJ = 0.25 * static_cast<double>(i + salt);
        s.majorFaults = i;
        p.fold(s);
    }
    return p;
}

std::string
partialJson(const PartialReport &p)
{
    std::ostringstream os;
    p.writeJson(os);
    return os.str();
}

} // namespace

TEST(PartialReport, JsonRoundTripIsExact)
{
    for (PercentileMode mode :
         {PercentileMode::Exact, PercentileMode::Sketch}) {
        PartialReport rep;
        rep.kind = PartialReport::Kind::Fleet;
        rep.shard = {2, 4};
        rep.fleet = samplePartial(mode, 2, 4, 7);
        std::string text = partialJson(rep);
        PartialReport back = PartialReport::parseText(text);
        EXPECT_EQ(back.shard, rep.shard);
        EXPECT_EQ(back.fleet.seed, rep.fleet.seed);
        // Re-serializing the parsed report reproduces every byte —
        // doubles round-trip exactly.
        EXPECT_EQ(partialJson(back), text);
    }
}

TEST(PartialReport, SweepRoundTrip)
{
    PartialReport rep;
    rep.kind = PartialReport::Kind::Sweep;
    rep.shard = {1, 2};
    rep.sweepName = "schemes";
    rep.variantCount = 3;
    rep.variants.push_back(
        {0, samplePartial(PercentileMode::Exact, 0, 8, 1)});
    rep.variants.push_back(
        {2, samplePartial(PercentileMode::Exact, 0, 8, 2)});
    std::string text = partialJson(rep);
    PartialReport back = PartialReport::parseText(text);
    ASSERT_EQ(back.variants.size(), 2u);
    EXPECT_EQ(back.variants[1].index, 2u);
    EXPECT_EQ(partialJson(back), text);
}

TEST(PartialReport, RejectsCorruptDocuments)
{
    EXPECT_THROW(PartialReport::parseText("garbage"), ReportError);
    EXPECT_THROW(PartialReport::parseText("{}"), ReportError);
    EXPECT_THROW(PartialReport::parseText(
                     R"({"ariadnePartial": 99, "kind": "fleet",
                         "shardIndex": 1, "shardCount": 1})"),
                 ReportError);
    // Truncated sample vectors are diagnosed via the count field.
    PartialReport rep;
    rep.fleet = samplePartial(PercentileMode::Exact, 0, 4, 3);
    std::string text = partialJson(rep);
    auto pos = text.find("\"samples\": [");
    ASSERT_NE(pos, std::string::npos);
    auto end = text.find("]", pos);
    std::string truncated = text.substr(0, text.find("[", pos) + 1) +
                            "1" + text.substr(end);
    EXPECT_THROW(PartialReport::parseText(truncated), ReportError);
    EXPECT_THROW(PartialReport::loadFile("/nonexistent/partial.json"),
                 ReportError);
}

// --- Merger ---------------------------------------------------------

TEST(ReportMerger, MergesShardsInCanonicalOrder)
{
    PartialReport a, b;
    a.shard = {1, 2};
    a.fleet = samplePartial(PercentileMode::Exact, 0, 4, 5);
    b.shard = {2, 2};
    b.fleet = samplePartial(PercentileMode::Exact, 4, 8, 5);

    MergedReport forward = mergePartials({a, b});
    MergedReport shuffled = mergePartials({b, a});
    std::ostringstream x, y;
    forward.fleet.writeJson(x);
    shuffled.fleet.writeJson(y);
    EXPECT_EQ(x.str(), y.str());
    EXPECT_EQ(forward.fleet.fleet, 8u);
    EXPECT_EQ(forward.fleet.relaunchMs.samples, 8u);
}

TEST(ReportMerger, SingleShardMergeEqualsFinalize)
{
    PartialReport solo;
    solo.fleet = samplePartial(PercentileMode::Exact, 0, 8, 9);
    MergedReport merged = mergePartials({solo});
    std::ostringstream x, y;
    merged.fleet.writeJson(x);
    finalizeFleet(solo.fleet).writeJson(y);
    EXPECT_EQ(x.str(), y.str());
}

TEST(ReportMerger, DiagnosesBadShardSets)
{
    PartialReport a, b, dup;
    a.shard = {1, 2};
    a.fleet = samplePartial(PercentileMode::Exact, 0, 4, 5);
    b.shard = {2, 2};
    b.fleet = samplePartial(PercentileMode::Exact, 4, 8, 5);
    dup = a;

    EXPECT_THROW(mergePartials({}), ReportError);
    EXPECT_THROW(mergePartials({a}), ReportError);         // missing 2/2
    EXPECT_THROW(mergePartials({a, dup}), ReportError);    // duplicate
    PartialReport wrong_seed = b;
    wrong_seed.fleet.seed ^= 1;
    EXPECT_THROW(mergePartials({a, wrong_seed}), ReportError);
    PartialReport wrong_range = b;
    wrong_range.fleet.sessionsBegin = 3;
    EXPECT_THROW(mergePartials({a, wrong_range}), ReportError);
    PartialReport wrong_mode = b;
    wrong_mode.fleet = samplePartial(PercentileMode::Sketch, 4, 8, 5);
    EXPECT_THROW(mergePartials({a, wrong_mode}), ReportError);
}

TEST(PartialReport, RejectsCorruptSketchState)
{
    PartialReport rep;
    rep.fleet = samplePartial(PercentileMode::Sketch, 0, 4, 3);
    std::string text = partialJson(rep);
    // Empty the first sketch's levels while leaving its count: the
    // weight invariant (levels weigh exactly `count`) must catch it
    // with exit-2 currency, never a crash at percentile time.
    auto pos = text.find("\"levels\": [");
    ASSERT_NE(pos, std::string::npos);
    auto open = text.find("[", pos);
    std::size_t depth = 0, end = open;
    do {
        if (text[end] == '[')
            ++depth;
        else if (text[end] == ']')
            --depth;
        ++end;
    } while (depth > 0);
    std::string gutted =
        text.substr(0, open + 1) + text.substr(end - 1);
    EXPECT_THROW(PartialReport::parseText(gutted), ReportError);
}

TEST(ReportMerger, SweepShardsMustShareOneRunIdentity)
{
    auto shard = [](std::size_t index, std::uint64_t hash,
                    std::uint64_t fleet_override) {
        PartialReport p;
        p.kind = PartialReport::Kind::Sweep;
        p.shard = {index, 2};
        p.sweepName = "s";
        p.variantCount = 2;
        p.sweepSpecHash = hash;
        p.fleetOverride = fleet_override;
        PartialReport::SweepEntry e;
        e.index = index - 1;
        e.fleet = samplePartial(PercentileMode::Exact, 0, 8, index);
        p.variants.push_back(std::move(e));
        return p;
    };
    // Same spec + same --fleet merges fine...
    EXPECT_EQ(mergePartials({shard(1, 7, 0), shard(2, 7, 0)})
                  .sweep.variants.size(),
              2u);
    // ...but shards of different sweep specs or different --fleet
    // overrides must be refused, not silently mixed.
    EXPECT_THROW(mergePartials({shard(1, 7, 0), shard(2, 8, 0)}),
                 ReportError);
    EXPECT_THROW(mergePartials({shard(1, 7, 4), shard(2, 7, 2)}),
                 ReportError);
}

TEST(ReportMerger, SweepNeedsEveryVariantExactlyOnce)
{
    auto entry = [](std::size_t index) {
        PartialReport::SweepEntry e;
        e.index = index;
        e.fleet = samplePartial(PercentileMode::Exact, 0, 8, index);
        return e;
    };
    PartialReport a, b;
    a.kind = b.kind = PartialReport::Kind::Sweep;
    a.sweepName = b.sweepName = "s";
    a.variantCount = b.variantCount = 3;
    a.shard = {1, 2};
    b.shard = {2, 2};
    a.variants.push_back(entry(0));
    a.variants.push_back(entry(2));
    b.variants.push_back(entry(1));

    driver::SweepResult merged = mergePartials({b, a}).sweep;
    ASSERT_EQ(merged.variants.size(), 3u);
    EXPECT_EQ(merged.name, "s");

    PartialReport missing = b;
    missing.variants.clear();
    EXPECT_THROW(mergePartials({a, missing}), ReportError);
    PartialReport incomplete = b;
    incomplete.variants[0].fleet.sessionsEnd = 4;
    EXPECT_THROW(mergePartials({a, incomplete}), ReportError);
}
