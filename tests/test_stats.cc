/** @file Unit tests for counters, scalars, histograms, registry. */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "sim/stats.hh"

using namespace ariadne;

TEST(Counter, StartsAtZeroAndIncrements)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(5);
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Scalar, TracksSumMinMaxMean)
{
    Scalar s;
    EXPECT_EQ(s.samples(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    s.sample(2.0);
    s.sample(4.0);
    s.sample(-1.0);
    EXPECT_EQ(s.samples(), 3u);
    EXPECT_DOUBLE_EQ(s.sum(), 5.0);
    EXPECT_DOUBLE_EQ(s.min(), -1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.mean(), 5.0 / 3.0, 1e-12);
}

TEST(Scalar, ResetClears)
{
    Scalar s;
    s.sample(10.0);
    s.reset();
    EXPECT_EQ(s.samples(), 0u);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
}

TEST(Histogram, BucketsSamples)
{
    Histogram h(1.0, 4);
    h.sample(0.5);
    h.sample(1.5);
    h.sample(1.7);
    h.sample(3.9);
    h.sample(10.0); // overflow
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 2u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.overflowCount(), 1u);
    EXPECT_EQ(h.samples(), 5u);
}

TEST(Histogram, NegativeSamplesClampToFirstBucket)
{
    Histogram h(1.0, 2);
    h.sample(-5.0);
    EXPECT_EQ(h.bucketCount(0), 1u);
}

TEST(Histogram, HugeSamplesLandInOverflowWithoutUb)
{
    // v / width used to be cast straight to size_t; doubles beyond the
    // target range made that undefined behavior. Huge and non-finite-
    // adjacent values must all land in the overflow bucket.
    Histogram h(1.0, 4);
    h.sample(1e300);
    h.sample(std::numeric_limits<double>::max());
    h.sample(std::numeric_limits<double>::infinity());
    h.sample(std::numeric_limits<double>::quiet_NaN());
    h.sample(4.0); // first value past the top edge
    EXPECT_EQ(h.overflowCount(), 5u);
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.bucketCount(3), 0u);
}

TEST(Histogram, PercentileOnKnownDistribution)
{
    // 100 samples uniform over [0, 10): percentiles at bucket
    // resolution (width 1).
    Histogram h(1.0, 10);
    for (int i = 0; i < 100; ++i)
        h.sample(static_cast<double>(i) / 10.0 + 0.05);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);  // first non-empty bucket
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 5.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.9), 9.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 10.0);
    // Out-of-range and NaN p clamp instead of reaching the integer
    // cast (which would be UB).
    EXPECT_DOUBLE_EQ(h.percentile(-1.0), h.percentile(0.0));
    EXPECT_DOUBLE_EQ(h.percentile(2.0), h.percentile(1.0));
    EXPECT_DOUBLE_EQ(
        h.percentile(std::numeric_limits<double>::quiet_NaN()),
        h.percentile(0.0));
}

TEST(Histogram, PercentileSaturatesAtTopEdgeForOverflow)
{
    Histogram h(1.0, 2);
    h.sample(0.5);
    h.sample(100.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 2.0);
    EXPECT_DOUBLE_EQ(Histogram(1.0, 2).percentile(0.5), 0.0); // empty
}

TEST(Distribution, PercentilesOnKnownDistribution)
{
    Distribution d;
    for (int i = 100; i >= 1; --i) // reverse order: sorting is lazy
        d.sample(static_cast<double>(i));
    EXPECT_EQ(d.samples(), 100u);
    EXPECT_DOUBLE_EQ(d.min(), 1.0);
    EXPECT_DOUBLE_EQ(d.max(), 100.0);
    EXPECT_DOUBLE_EQ(d.mean(), 50.5);
    // Nearest rank: ceil(p * n)-th smallest.
    EXPECT_DOUBLE_EQ(d.percentile(0.50), 50.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.90), 90.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 100.0);
    EXPECT_DOUBLE_EQ(d.percentile(-3.0), 1.0);
    EXPECT_DOUBLE_EQ(d.percentile(7.0), 100.0);
    EXPECT_DOUBLE_EQ(
        d.percentile(std::numeric_limits<double>::quiet_NaN()), 1.0);
}

TEST(Distribution, SingleSampleAndEmpty)
{
    Distribution d;
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.0), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 7.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 7.0);
}

TEST(Distribution, SamplingAfterPercentileQueryStillWorks)
{
    Distribution d;
    d.sample(3.0);
    d.sample(1.0);
    EXPECT_DOUBLE_EQ(d.percentile(1.0), 3.0);
    d.sample(2.0); // invalidates the lazily sorted order
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 2.0);
    d.reset();
    EXPECT_EQ(d.samples(), 0u);
    EXPECT_DOUBLE_EQ(d.percentile(0.5), 0.0);
}

TEST(Histogram, CdfMonotonic)
{
    Histogram h(1.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(static_cast<double>(i) + 0.5);
    double prev = 0.0;
    for (int i = 1; i <= 10; ++i) {
        double cdf = h.cdfAt(static_cast<double>(i));
        EXPECT_GE(cdf, prev);
        prev = cdf;
    }
    EXPECT_DOUBLE_EQ(h.cdfAt(10.0), 1.0);
}

TEST(Histogram, ResetClearsAll)
{
    Histogram h(2.0, 2);
    h.sample(1.0);
    h.sample(100.0);
    h.reset();
    EXPECT_EQ(h.samples(), 0u);
    EXPECT_EQ(h.overflowCount(), 0u);
}

namespace
{

/**
 * Worst-case distance between the true rank interval of the value the
 * sketch returned for percentile @p p and the nearest-rank target —
 * the quantity PercentileSketch::rankErrorBound bounds.
 */
std::uint64_t
rankError(const std::vector<double> &sorted, double p, double value)
{
    auto n = static_cast<double>(sorted.size());
    auto target = static_cast<std::uint64_t>(std::ceil(p * n));
    if (target == 0)
        target = 1;
    auto lo = static_cast<std::uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), value) -
        sorted.begin()); // samples strictly below `value`
    auto hi = static_cast<std::uint64_t>(
        std::upper_bound(sorted.begin(), sorted.end(), value) -
        sorted.begin()); // samples <= `value`
    if (target >= lo + 1 && target <= hi)
        return 0;
    return target < lo + 1 ? (lo + 1) - target : target - hi;
}

void
expectWithinBound(const std::vector<double> &data,
                  const PercentileSketch &sk)
{
    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    for (double p : {0.01, 0.25, 0.5, 0.9, 0.99, 1.0}) {
        double v = sk.percentile(p);
        EXPECT_LE(rankError(sorted, p, v), sk.rankErrorBound())
            << "p=" << p << " value=" << v;
    }
}

} // namespace

TEST(PercentileSketch, ExactUntilFirstCompaction)
{
    PercentileSketch sk(64);
    Distribution d;
    for (int i = 0; i < 63; ++i) {
        sk.sample(static_cast<double>((i * 37) % 63));
        d.sample(static_cast<double>((i * 37) % 63));
    }
    EXPECT_EQ(sk.rankErrorBound(), 0u);
    for (double p : {0.0, 0.25, 0.5, 0.9, 1.0})
        EXPECT_DOUBLE_EQ(sk.percentile(p), d.percentile(p));
}

TEST(PercentileSketch, EmptyAndClampedQueries)
{
    PercentileSketch sk;
    EXPECT_DOUBLE_EQ(sk.percentile(0.5), 0.0);
    sk.sample(7.0);
    EXPECT_DOUBLE_EQ(sk.percentile(-1.0), 7.0);
    EXPECT_DOUBLE_EQ(sk.percentile(2.0), 7.0);
    EXPECT_DOUBLE_EQ(
        sk.percentile(std::numeric_limits<double>::quiet_NaN()), 7.0);
}

TEST(PercentileSketch, BoundHoldsOnAdversarialInputs)
{
    // Patterns chosen to stress the compactors: sorted, reversed,
    // constant runs, alternating extremes, and a sawtooth.
    const std::size_t n = 40000;
    std::vector<std::vector<double>> inputs(5);
    for (std::size_t i = 0; i < n; ++i) {
        auto x = static_cast<double>(i);
        inputs[0].push_back(x);
        inputs[1].push_back(static_cast<double>(n - i));
        inputs[2].push_back(static_cast<double>(i / 1000));
        inputs[3].push_back(i % 2 ? 1e9 + x : -1e9 - x);
        inputs[4].push_back(static_cast<double>(i % 97));
    }
    for (const auto &data : inputs) {
        PercentileSketch sk(64);
        for (double v : data)
            sk.sample(v);
        EXPECT_EQ(sk.samples(), n);
        EXPECT_GT(sk.rankErrorBound(), 0u);
        expectWithinBound(data, sk);
    }
}

TEST(PercentileSketch, MemoryAndErrorStaySublinearAtMillionSamples)
{
    const std::size_t n = 1000000;
    PercentileSketch sk; // defaultK = 256
    for (std::size_t i = 0; i < n; ++i)
        sk.sample(static_cast<double>((i * 2654435761ULL) % n));
    EXPECT_EQ(sk.samples(), n);
    // Retention is O(k log(n/k)), nowhere near O(n).
    EXPECT_LE(sk.retained(), 4096u);
    // The tracked bound follows the documented (n/k) log2(n/k)
    // envelope (~5 % of n at these parameters; allow slack).
    EXPECT_LE(sk.rankErrorBound(), n / 12);
    // And the returned percentiles honour it.
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<double>((i * 2654435761ULL) % n);
    expectWithinBound(data, sk);
}

TEST(PercentileSketch, MergeMatchesSequentialBounds)
{
    const std::size_t n = 20000;
    std::vector<double> data(n);
    for (std::size_t i = 0; i < n; ++i)
        data[i] = static_cast<double>((i * 7919) % 10007);

    // Shard the stream four ways, sketch each, merge in shard order.
    std::vector<PercentileSketch> shards(4, PercentileSketch(64));
    for (std::size_t i = 0; i < n; ++i)
        shards[i / (n / 4)].sample(data[i]);
    PercentileSketch merged = shards[0];
    for (std::size_t s = 1; s < shards.size(); ++s)
        merged.merge(shards[s]);
    EXPECT_EQ(merged.samples(), n);
    expectWithinBound(data, merged);

    // The merge is deterministic: repeating it reproduces every
    // queried percentile and the tracked bound exactly.
    PercentileSketch again = shards[0];
    for (std::size_t s = 1; s < shards.size(); ++s)
        again.merge(shards[s]);
    EXPECT_EQ(again.rankErrorBound(), merged.rankErrorBound());
    for (double p : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(again.percentile(p), merged.percentile(p));
}

TEST(PercentileSketch, RestoreRoundTripsSerializedState)
{
    PercentileSketch sk(32);
    for (int i = 0; i < 5000; ++i)
        sk.sample(static_cast<double>((i * 31) % 499));
    PercentileSketch back = PercentileSketch::restore(
        sk.k(), sk.samples(), sk.rankErrorBound(),
        {sk.levels().begin(), sk.levels().end()});
    EXPECT_EQ(back.samples(), sk.samples());
    EXPECT_EQ(back.rankErrorBound(), sk.rankErrorBound());
    for (double p : {0.1, 0.5, 0.9, 0.99})
        EXPECT_DOUBLE_EQ(back.percentile(p), sk.percentile(p));
}

TEST(PercentileSketch, ResetClears)
{
    PercentileSketch sk(16);
    for (int i = 0; i < 100; ++i)
        sk.sample(static_cast<double>(i));
    sk.reset();
    EXPECT_EQ(sk.samples(), 0u);
    EXPECT_EQ(sk.rankErrorBound(), 0u);
    EXPECT_DOUBLE_EQ(sk.percentile(0.5), 0.0);
}

TEST(PercentileModeNames, RoundTrip)
{
    EXPECT_STREQ(percentileModeName(PercentileMode::Exact), "exact");
    EXPECT_STREQ(percentileModeName(PercentileMode::Sketch), "sketch");
    EXPECT_EQ(parsePercentileModeName("Sketch"),
              PercentileMode::Sketch);
    EXPECT_EQ(parsePercentileModeName("EXACT"), PercentileMode::Exact);
    EXPECT_FALSE(parsePercentileModeName("median").has_value());
}

TEST(StatRegistry, DumpContainsEntries)
{
    StatRegistry reg;
    Counter c;
    c.inc(3);
    Scalar s;
    s.sample(1.0);
    reg.addCounter("a.counter", c);
    reg.addScalar("b.scalar", s);

    std::ostringstream os;
    reg.dump(os);
    std::string text = os.str();
    EXPECT_NE(text.find("a.counter 3"), std::string::npos);
    EXPECT_NE(text.find("b.scalar.mean 1"), std::string::npos);
}

TEST(StatRegistry, FindWorks)
{
    StatRegistry reg;
    Counter c;
    reg.addCounter("x", c);
    EXPECT_EQ(reg.findCounter("x"), &c);
    EXPECT_EQ(reg.findCounter("missing"), nullptr);
    EXPECT_EQ(reg.findScalar("x"), nullptr);
}
