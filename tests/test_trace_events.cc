/** @file Unit tests for the Chrome trace-event timeline log. */

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "report/json_reader.hh"
#include "telemetry/trace_log.hh"

using namespace ariadne;
using telemetry::TraceLog;
using telemetry::TraceSpan;

namespace
{

class TraceLogTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        telemetry::setTraceEnabled(true);
        TraceLog::global().clear();
    }

    void
    TearDown() override
    {
        telemetry::setTraceEnabled(false);
        TraceLog::global().clear();
    }
};

std::string
exported()
{
    std::ostringstream os;
    TraceLog::global().writeChromeTrace(os);
    return os.str();
}

} // namespace

TEST_F(TraceLogTest, RecordsCompleteSpans)
{
    {
        TraceSpan span("unit_span");
    }
    auto events = TraceLog::global().events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "unit_span");
    EXPECT_GT(events[0].tid, 0u);
}

TEST_F(TraceLogTest, DisabledSpanRecordsNothing)
{
    telemetry::setTraceEnabled(false);
    {
        TraceSpan span("invisible");
    }
    EXPECT_TRUE(TraceLog::global().events().empty());
}

TEST_F(TraceLogTest, SpanCapturesEnabledAtConstruction)
{
    telemetry::setTraceEnabled(false);
    {
        TraceSpan span("race");
        telemetry::setTraceEnabled(true);
    }
    EXPECT_TRUE(TraceLog::global().events().empty());
}

TEST_F(TraceLogTest, EventsSortedByStartAcrossThreads)
{
    std::thread other([] {
        TraceSpan span("thread_b");
    });
    other.join();
    {
        TraceSpan span("thread_a");
    }
    auto events = TraceLog::global().events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_LE(events[0].tsNs, events[1].tsNs);
    // Two distinct threads get distinct tids.
    EXPECT_NE(events[0].tid, events[1].tid);
}

TEST_F(TraceLogTest, ExportIsWellFormedChromeTraceJson)
{
    TraceLog::global().nameThisThread("main");
    {
        TraceSpan outer("outer", "index", 7);
        TraceSpan inner("inner");
    }
    report::JsonValue doc = report::JsonValue::parseText(exported());
    EXPECT_EQ(doc.at("displayTimeUnit").asString(), "ms");

    const auto &events = doc.at("traceEvents").asArray();
    // One thread_name metadata event + two spans.
    ASSERT_EQ(events.size(), 3u);

    const auto &meta = events[0];
    EXPECT_EQ(meta.at("ph").asString(), "M");
    EXPECT_EQ(meta.at("name").asString(), "thread_name");
    EXPECT_EQ(meta.at("args").at("name").asString(), "main");

    bool saw_outer = false, saw_inner = false;
    for (std::size_t i = 1; i < events.size(); ++i) {
        const auto &e = events[i];
        EXPECT_EQ(e.at("ph").asString(), "X");
        EXPECT_GE(e.at("dur").asDouble(), 0.0);
        EXPECT_GE(e.at("ts").asDouble(), 0.0);
        EXPECT_EQ(e.at("pid").asU64(), 1u);
        if (e.at("name").asString() == "outer") {
            saw_outer = true;
            EXPECT_EQ(e.at("args").at("index").asU64(), 7u);
        }
        if (e.at("name").asString() == "inner")
            saw_inner = true;
    }
    EXPECT_TRUE(saw_outer);
    EXPECT_TRUE(saw_inner);
}

TEST_F(TraceLogTest, EmptyLogExportsValidDocument)
{
    report::JsonValue doc = report::JsonValue::parseText(exported());
    EXPECT_TRUE(doc.at("traceEvents").asArray().empty());
}

TEST_F(TraceLogTest, ClearDropsEventsAndNames)
{
    TraceLog::global().nameThisThread("gone");
    {
        TraceSpan span("gone_too");
    }
    TraceLog::global().clear();
    EXPECT_TRUE(TraceLog::global().events().empty());
    EXPECT_TRUE(TraceLog::global().threadNames().empty());
}

TEST_F(TraceLogTest, NestedSpanContainedInOuterInterval)
{
    {
        TraceSpan outer("contain_outer");
        {
            TraceSpan inner("contain_inner");
            volatile unsigned sink = 0;
            for (unsigned i = 0; i < 1000; ++i)
                sink = sink + i;
        }
    }
    auto events = TraceLog::global().events();
    ASSERT_EQ(events.size(), 2u);
    // events() sorts by start: outer starts first.
    const auto &outer = events[0];
    const auto &inner = events[1];
    EXPECT_EQ(outer.name, "contain_outer");
    EXPECT_EQ(inner.name, "contain_inner");
    EXPECT_LE(outer.tsNs, inner.tsNs);
    EXPECT_GE(outer.tsNs + outer.durNs, inner.tsNs + inner.durNs);
}
