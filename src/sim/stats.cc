#include "sim/stats.hh"

#include <cmath>

#include "sim/log.hh"

namespace ariadne
{

double
Distribution::min() const noexcept
{
    return values.empty()
               ? 0.0
               : *std::min_element(values.begin(), values.end());
}

double
Distribution::max() const noexcept
{
    return values.empty()
               ? 0.0
               : *std::max_element(values.begin(), values.end());
}

double
Distribution::mean() const noexcept
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
Distribution::percentile(double p) const
{
    if (values.empty())
        return 0.0;
    if (!sorted) {
        std::sort(values.begin(), values.end());
        sorted = true;
    }
    // Negated comparison so NaN clamps to 0 instead of reaching the
    // size_t cast below (double-to-integer conversion out of range is
    // undefined behavior).
    if (!(p > 0.0))
        p = 0.0;
    else if (p > 1.0)
        p = 1.0;
    auto rank = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(values.size())));
    if (rank == 0)
        rank = 1;
    return values[rank - 1];
}

Histogram::Histogram(double bucket_width, std::size_t bucket_count)
    : width(bucket_width), bins(bucket_count, 0)
{
    fatalIf(bucket_width <= 0.0, "Histogram bucket width must be > 0");
    fatalIf(bucket_count == 0, "Histogram needs at least one bucket");
}

void
Histogram::sample(double v) noexcept
{
    total += 1;
    if (v < 0.0)
        v = 0.0;
    // Compare in floating point *before* the size_t cast: converting a
    // double beyond the target range (v / width can be anything up to
    // inf, or NaN) is undefined behavior. The negated comparison routes
    // both huge samples and NaN to the overflow bucket; only values
    // strictly inside [0, bins.size()) reach the cast.
    double scaled = v / width;
    if (!(scaled < static_cast<double>(bins.size())))
        overflow += 1;
    else
        bins[static_cast<std::size_t>(scaled)] += 1;
}

double
Histogram::percentile(double p) const noexcept
{
    if (total == 0)
        return 0.0;
    // Negated comparison: NaN p clamps to 0 rather than hitting the
    // integer cast below (that conversion would be UB).
    if (!(p > 0.0))
        p = 0.0;
    else if (p > 1.0)
        p = 1.0;
    // Nearest-rank over the bucketed CDF: the upper edge of the first
    // bucket whose cumulative count reaches p * total. Samples in the
    // overflow bucket only report the histogram's top edge — callers
    // needing exact tails should use Distribution instead.
    auto target = static_cast<std::uint64_t>(
        std::ceil(p * static_cast<double>(total)));
    if (target == 0)
        target = 1;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        acc += bins[i];
        if (acc >= target)
            return width * static_cast<double>(i + 1);
    }
    return width * static_cast<double>(bins.size());
}

std::uint64_t
Histogram::bucketCount(std::size_t i) const
{
    panicIf(i >= bins.size(), "Histogram bucket index out of range");
    return bins[i];
}

double
Histogram::cdfAt(double v) const noexcept
{
    if (total == 0)
        return 0.0;
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) {
        double upper = width * static_cast<double>(i + 1);
        if (upper <= v)
            acc += bins[i];
        else
            break;
    }
    return static_cast<double>(acc) / static_cast<double>(total);
}

void
Histogram::reset() noexcept
{
    std::fill(bins.begin(), bins.end(), 0);
    overflow = 0;
    total = 0;
}

void
StatRegistry::addCounter(const std::string &name, const Counter &c)
{
    auto [it, inserted] = counters.emplace(name, &c);
    (void)it;
    fatalIf(!inserted, "duplicate counter name: " + name);
}

void
StatRegistry::addScalar(const std::string &name, const Scalar &s)
{
    auto [it, inserted] = scalars.emplace(name, &s);
    (void)it;
    fatalIf(!inserted, "duplicate scalar name: " + name);
}

void
StatRegistry::dump(std::ostream &os) const
{
    for (const auto &[name, c] : counters)
        os << name << " " << c->value() << "\n";
    for (const auto &[name, s] : scalars) {
        os << name << ".mean " << s->mean() << "\n";
        os << name << ".samples " << s->samples() << "\n";
    }
}

const Counter *
StatRegistry::findCounter(const std::string &name) const
{
    auto it = counters.find(name);
    return it == counters.end() ? nullptr : it->second;
}

const Scalar *
StatRegistry::findScalar(const std::string &name) const
{
    auto it = scalars.find(name);
    return it == scalars.end() ? nullptr : it->second;
}

} // namespace ariadne
