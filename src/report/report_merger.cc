#include "report/report_merger.hh"

#include <algorithm>

namespace ariadne::report
{

using driver::FleetResult;
using driver::SweepResult;

namespace
{

[[noreturn]] void
badMerge(const std::string &msg)
{
    throw ReportError("cannot merge partial reports: " + msg);
}

/** Sort by shard index and demand exactly the shards 1..N of one
 * consistent plan, each once. */
void
canonicalize(std::vector<PartialReport> &partials)
{
    if (partials.empty())
        badMerge("no partial reports given");
    std::sort(partials.begin(), partials.end(),
              [](const PartialReport &a, const PartialReport &b) {
                  return a.shard.index < b.shard.index;
              });
    std::size_t count = partials[0].shard.count;
    if (partials.size() != count)
        badMerge("plan says " + std::to_string(count) +
                 " shard(s) but " + std::to_string(partials.size()) +
                 " partial report(s) were given");
    for (std::size_t i = 0; i < partials.size(); ++i) {
        const PartialReport &p = partials[i];
        if (p.kind != partials[0].kind)
            badMerge("mixed fleet and sweep partials");
        if (p.shard.count != count)
            badMerge("shard counts differ (" +
                     std::to_string(p.shard.count) + " vs " +
                     std::to_string(count) + ")");
        if (p.shard.index != i + 1) {
            bool duplicate =
                i > 0 &&
                p.shard.index == partials[i - 1].shard.index;
            badMerge(duplicate
                         ? "duplicate shard " +
                               std::to_string(p.shard.index) + "/" +
                               std::to_string(count)
                         : "missing shard " + std::to_string(i + 1) +
                               "/" + std::to_string(count));
        }
    }
}

FleetResult
mergeFleet(std::vector<PartialReport> &partials)
{
    // Every shard's session range must be exactly what its plan
    // computes; adjacency (and therefore full [0, fleet) coverage)
    // then follows, and FleetPartial::merge re-checks it anyway.
    for (const PartialReport &p : partials) {
        auto [begin, end] = p.shard.sessionRange(p.fleet.fleet);
        if (p.fleet.sessionsBegin != begin ||
            p.fleet.sessionsEnd != end)
            badMerge("shard " + p.shard.toString() +
                     " covers sessions [" +
                     std::to_string(p.fleet.sessionsBegin) + ", " +
                     std::to_string(p.fleet.sessionsEnd) +
                     ") but its plan assigns [" +
                     std::to_string(begin) + ", " +
                     std::to_string(end) + ")");
    }
    FleetPartial merged = std::move(partials[0].fleet);
    for (std::size_t i = 1; i < partials.size(); ++i)
        merged.merge(partials[i].fleet);
    return finalizeFleet(merged);
}

SweepResult
mergeSweep(std::vector<PartialReport> &partials)
{
    PartialReport combined;
    combined.kind = PartialReport::Kind::Sweep;
    combined.shard = ShardPlan{};
    combined.sweepName = partials[0].sweepName;
    combined.variantCount = partials[0].variantCount;
    combined.sweepSpecHash = partials[0].sweepSpecHash;
    combined.fleetOverride = partials[0].fleetOverride;
    for (PartialReport &p : partials) {
        if (p.sweepName != combined.sweepName)
            badMerge("sweep names differ ('" + p.sweepName + "' vs '" +
                     combined.sweepName + "')");
        if (p.variantCount != combined.variantCount)
            badMerge("variant counts differ (" +
                     std::to_string(p.variantCount) + " vs " +
                     std::to_string(combined.variantCount) + ")");
        if (p.sweepSpecHash != combined.sweepSpecHash)
            badMerge("sweep shards come from different sweep specs "
                     "(spec hashes differ; every shard must run the "
                     "identical sweep config)");
        if (p.fleetOverride != combined.fleetOverride)
            badMerge("sweep shards ran with different --fleet "
                     "overrides (" +
                     std::to_string(p.fleetOverride) + " vs " +
                     std::to_string(combined.fleetOverride) + ")");
        for (PartialReport::SweepEntry &entry : p.variants)
            combined.variants.push_back(std::move(entry));
    }
    return finalizeSweep(combined);
}

} // namespace

FleetResult
finalizeFleet(const FleetPartial &p)
{
    FleetResult r;
    r.scenario = p.scenario;
    r.scheme = p.scheme;
    r.ariadneConfig = p.ariadneConfig;
    r.scale = p.scale;
    r.seed = p.seed;
    r.fleet = p.fleet;
    r.percentiles = p.mode;
    r.totalRelaunches = p.totalRelaunches;
    r.totalStagedHits = p.totalStagedHits;
    r.totalMajorFaults = p.totalMajorFaults;
    r.totalFlashFaults = p.totalFlashFaults;
    r.totalLostPages = p.totalLostPages;
    r.totalDirectReclaims = p.totalDirectReclaims;
    r.relaunchMs = p.relaunchMs.summarize();
    r.compDecompCpuMs = p.compDecompCpuMs.summarize();
    r.kswapdCpuMs = p.kswapdCpuMs.summarize();
    r.energyJ = p.energyJ.summarize();
    r.compRatio = p.compRatio.summarize();
    return r;
}

SweepResult
finalizeSweep(const PartialReport &p)
{
    if (p.kind != PartialReport::Kind::Sweep)
        badMerge("expected a sweep partial");
    std::vector<const PartialReport::SweepEntry *> entries;
    entries.reserve(p.variants.size());
    for (const PartialReport::SweepEntry &entry : p.variants)
        entries.push_back(&entry);
    std::sort(entries.begin(), entries.end(),
              [](const auto *a, const auto *b) {
                  return a->index < b->index;
              });
    if (entries.size() != p.variantCount) {
        std::string msg = "sweep '" + p.sweepName + "' declares " +
                          std::to_string(p.variantCount) +
                          " variant(s) but the partials carry " +
                          std::to_string(entries.size());
        badMerge(msg);
    }
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const PartialReport::SweepEntry &entry = *entries[i];
        if (entry.index != i)
            badMerge(i > 0 && entries[i - 1]->index == entry.index
                         ? "duplicate variant index " +
                               std::to_string(entry.index)
                         : "missing variant index " +
                               std::to_string(i));
        if (entry.fleet.sessionsBegin != 0 ||
            entry.fleet.sessionsEnd != entry.fleet.fleet)
            badMerge("variant " + std::to_string(entry.index) +
                     " ('" + entry.fleet.scenario +
                     "') is incomplete: covers sessions [" +
                     std::to_string(entry.fleet.sessionsBegin) + ", " +
                     std::to_string(entry.fleet.sessionsEnd) +
                     ") of fleet " +
                     std::to_string(entry.fleet.fleet));
    }
    SweepResult result;
    result.name = p.sweepName;
    result.variants.reserve(entries.size());
    for (const auto *entry : entries)
        result.variants.push_back(finalizeFleet(entry->fleet));
    return result;
}

MergedReport
mergePartials(std::vector<PartialReport> partials)
{
    canonicalize(partials);
    MergedReport out;
    out.kind = partials[0].kind;
    if (out.kind == PartialReport::Kind::Fleet)
        out.fleet = mergeFleet(partials);
    else
        out.sweep = mergeSweep(partials);
    return out;
}

MergedReport
mergeReportFiles(const std::vector<std::string> &paths)
{
    std::vector<PartialReport> partials;
    partials.reserve(paths.size());
    for (const std::string &path : paths)
        partials.push_back(PartialReport::loadFile(path));
    return mergePartials(partials);
}

} // namespace ariadne::report
