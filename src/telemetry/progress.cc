#include "telemetry/progress.hh"

#include <cstdio>
#include <iostream>

#include "telemetry/telemetry.hh"

namespace ariadne::telemetry
{

ProgressMeter &
ProgressMeter::global()
{
    static ProgressMeter instance;
    return instance;
}

void
ProgressMeter::enable(std::uint64_t total_items, std::string run_label,
                      std::ostream *out)
{
    std::lock_guard<std::mutex> lk(mu);
    total = total_items;
    label = std::move(run_label);
    sink = out ? out : &std::cerr;
    done.store(0, std::memory_order_relaxed);
    startNs = hostNowNs();
    lastEmitNs.store(0, std::memory_order_relaxed);
    armed.store(true, std::memory_order_relaxed);
}

void
ProgressMeter::disable()
{
    std::lock_guard<std::mutex> lk(mu);
    armed.store(false, std::memory_order_relaxed);
    sink = nullptr;
}

void
ProgressMeter::setMinIntervalNs(std::uint64_t ns) noexcept
{
    minIntervalNs = ns;
}

double
ProgressMeter::elapsedSeconds() const noexcept
{
    return static_cast<double>(hostNowNs() - startNs) / 1e9;
}

namespace
{

std::string
fixed1(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

} // namespace

std::string
ProgressMeter::formatLine(const std::string &label, std::uint64_t done,
                          std::uint64_t total, double elapsed_seconds)
{
    std::string line = "progress: " + label + " " +
                       std::to_string(done);
    if (total) {
        double pct = 100.0 * static_cast<double>(done) /
                     static_cast<double>(total);
        line += "/" + std::to_string(total) + " sessions (" +
                fixed1(pct) + "%)";
    } else {
        line += " sessions";
    }
    if (elapsed_seconds > 0.0) {
        double rate = static_cast<double>(done) / elapsed_seconds;
        line += ", " + fixed1(rate) + " sessions/s";
        if (total && rate > 0.0 && done < total) {
            double eta =
                static_cast<double>(total - done) / rate;
            line += ", eta " + fixed1(eta) + "s";
        }
    }
    return line;
}

std::string
ProgressMeter::formatSummary(const std::string &label,
                             std::uint64_t done,
                             double elapsed_seconds)
{
    std::string line = "progress: " + label + " done: " +
                       std::to_string(done) + " sessions in " +
                       fixed1(elapsed_seconds) + "s";
    if (elapsed_seconds > 0.0)
        line += " (" +
                fixed1(static_cast<double>(done) / elapsed_seconds) +
                " sessions/s)";
    return line;
}

void
ProgressMeter::emitLine(const std::string &line)
{
    std::lock_guard<std::mutex> lk(mu);
    if (!sink)
        return;
    // One write per whole line, so concurrent writers (or a launcher
    // multiplexing worker stderr streams) never interleave mid-line.
    *sink << (line + "\n") << std::flush;
}

void
ProgressMeter::tick(std::uint64_t n)
{
    if (!armed.load(std::memory_order_relaxed))
        return;
    std::uint64_t now_done =
        done.fetch_add(n, std::memory_order_relaxed) + n;
    std::uint64_t elapsed = hostNowNs() - startNs;
    std::uint64_t last = lastEmitNs.load(std::memory_order_relaxed);
    // 0 means "no heartbeat yet": the first tick always emits, later
    // ones rate-limit against the previous emission.
    if (last != 0 && elapsed < last + minIntervalNs)
        return;
    // One emitter per interval: whoever wins the CAS prints.
    if (!lastEmitNs.compare_exchange_strong(
            last, elapsed ? elapsed : 1, std::memory_order_relaxed))
        return;
    emitLine(formatLine(label, now_done, total, elapsedSeconds()));
}

void
ProgressMeter::finish()
{
    if (!armed.load(std::memory_order_relaxed))
        return;
    emitLine(formatSummary(label, done.load(std::memory_order_relaxed),
                           elapsedSeconds()));
}

} // namespace ariadne::telemetry
