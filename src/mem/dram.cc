#include "mem/dram.hh"

namespace ariadne
{

Dram::Dram(std::size_t capacity_bytes, double low_watermark,
           double high_watermark)
    : capacity(capacity_bytes / pageSize)
{
    fatalIf(capacity == 0, "DRAM budget smaller than one page");
    fatalIf(low_watermark < 0.0 || high_watermark > 1.0 ||
                low_watermark > high_watermark,
            "invalid DRAM watermarks");
    lowPages = static_cast<std::size_t>(
        static_cast<double>(capacity) * low_watermark);
    highPages = static_cast<std::size_t>(
        static_cast<double>(capacity) * high_watermark);
    if (highPages == 0)
        highPages = 1;
    if (lowPages == 0)
        lowPages = 1;
}

} // namespace ariadne
