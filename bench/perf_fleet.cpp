/**
 * @file
 * perf_fleet — end-to-end fleet throughput harness.
 *
 * Runs a fixed daily-usage fleet through the FleetRunner with
 * telemetry enabled and emits BENCH_fleet.json: wall time,
 * sessions/sec, peak RSS, and the run's telemetry counters, all in
 * the stable `ariadneBench` schema (telemetry/bench_report.hh). CI
 * runs this in Release and fails when sessions/sec regresses more
 * than the tolerance band against bench/baselines/BENCH_fleet.json
 * (bench/compare_bench.py).
 *
 *     perf_fleet [--fleet N] [--threads T] [--out FILE]
 *
 * The workload is built in code (not from scenarios/) so the binary
 * measures the same work regardless of the working directory.
 */

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hh"
#include "telemetry/bench_report.hh"
#include "telemetry/telemetry.hh"

using namespace ariadne;

namespace
{

/** The measured workload: the daily round-robin mix over the five
 * plotted apps under the paper's scheme. */
driver::ScenarioSpec
fleetSpec()
{
    driver::ScenarioSpec spec = bench::makeSpec("ariadne");
    spec.name = "perf_fleet";
    spec.apps = bench::plottedApps();
    spec.program.push_back(driver::Event::warmup());
    for (int i = 0; i < 20; ++i)
        spec.program.push_back(driver::Event::switchNext(
            Tick{2} * 1000000000ULL, Tick{500} * 1000000ULL));
    return spec;
}

} // namespace

int
main(int argc, char **argv)
{
    std::size_t fleet = 16;
    unsigned threads = 0; // hardware count
    std::string out_path = "BENCH_fleet.json";
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--fleet") && i + 1 < argc) {
            fleet = std::stoul(argv[++i]);
        } else if (!std::strcmp(argv[i], "--threads") && i + 1 < argc) {
            threads = static_cast<unsigned>(std::stoul(argv[++i]));
        } else if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
            out_path = argv[++i];
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--fleet N] [--threads T] [--out FILE]\n";
            return 2;
        }
    }

    telemetry::setEnabled(true);
    telemetry::Registry::global().reset();

    driver::ScenarioSpec spec = fleetSpec();
    std::string spec_text = spec.toString();
    driver::FleetRunner runner(std::move(spec));

    auto start = std::chrono::steady_clock::now();
    driver::FleetResult result = runner.run(fleet, threads);
    std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - start;

    telemetry::BenchReport report;
    report.bench = "fleet";
    report.meta = telemetry::RunMeta::current();
    report.meta.threads = threads;
    report.meta.scenario = runner.spec().name;
    report.meta.scenarioHash = report::fnv1a64(spec_text);
    report.wallSeconds = wall.count();
    report.peakRssBytes = telemetry::currentPeakRssBytes();
    report.rates.emplace_back(
        "sessionsPerSec",
        static_cast<double>(fleet) / std::max(wall.count(), 1e-9));
    report.totals.emplace_back("sessions", fleet);
    report.totals.emplace_back("relaunches", result.totalRelaunches);
    report.totals.emplace_back("majorFaults", result.totalMajorFaults);
    report.telemetry = telemetry::Registry::global().snapshot();

    std::ofstream out(out_path);
    if (!out) {
        std::cerr << "perf_fleet: cannot write " << out_path << "\n";
        return 1;
    }
    report.writeJson(out);

    std::cerr << "perf_fleet: " << fleet << " sessions in "
              << wall.count() << "s ("
              << static_cast<double>(fleet) / wall.count()
              << " sessions/s), report " << out_path << "\n";
    return 0;
}
