#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace ariadne
{

namespace
{

LogLevel g_level = LogLevel::Warn;

// Serializes emitLine so concurrent fleet workers' messages never
// interleave mid-line; each message is one complete write.
std::mutex g_logMutex;

void
emitLine(const char *prefix, const std::string &msg)
{
    std::string line;
    line.reserve(msg.size() + 16);
    line += prefix;
    line += msg;
    line += '\n';
    std::lock_guard<std::mutex> lock(g_logMutex);
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
}

} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
panic(const std::string &msg)
{
    emitLine("panic: ", msg);
    std::abort();
}

void
fatal(const std::string &msg)
{
    emitLine("fatal: ", msg);
    std::exit(1);
}

void
warn(const std::string &msg)
{
    if (g_level >= LogLevel::Warn)
        emitLine("warn: ", msg);
}

void
inform(const std::string &msg)
{
    if (g_level >= LogLevel::Inform)
        emitLine("info: ", msg);
}

void
debug(const std::string &msg)
{
    if (g_level >= LogLevel::Debug)
        emitLine("debug: ", msg);
}

} // namespace ariadne
