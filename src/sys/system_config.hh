/**
 * @file
 * System-level configuration (the paper's Table 4 platform plus
 * scheme selection).
 *
 * The swap scheme is selected by registry name (`dram`, `swap`,
 * `zram`, `zswap`, `ariadne`; see swap/scheme_registry.hh) and
 * configured through a SchemeParams knob bag, so adding a scheme or a
 * policy knob never touches this struct. All capacities are given at
 * paper scale and multiplied by `scale` internally, so a bench can
 * run at 1/8 footprint and reconstruct full-scale latencies (see
 * RelaunchStats::fullScaleNs).
 */

#ifndef ARIADNE_SYS_SYSTEM_CONFIG_HH
#define ARIADNE_SYS_SYSTEM_CONFIG_HH

#include <string>

#include "sim/energy_model.hh"
#include "sim/timing_model.hh"
#include "swap/scheme_registry.hh"

namespace ariadne
{

/** Full system configuration. */
struct SystemConfig
{
    /** Footprint scale; 1.0 = the paper's volumes. */
    double scale = 0.125;

    /** DRAM budget for anonymous pages (paper scale). A Pixel 7 has
     * 12 GB total; apps' anonymous data competes for roughly this
     * much after the OS, file cache, GPU and zpool take theirs. */
    std::size_t dramBytes = std::size_t{2560} * 1024 * 1024;

    /** Watermarks (fractions of the anon budget). */
    double lowWatermark = 0.02;
    double highWatermark = 0.05;

    /** Registered name of the swap scheme to run. */
    std::string scheme = "zram";

    /** Scheme policy knobs, validated against the scheme's schema
     * (`scheme.<knob>` keys of a scenario config). */
    SchemeParams schemeParams;

    /** Pages requested per synchronous direct-reclaim call on the
     * fault path (scheme-independent; kswapd sizes its own batches
     * from the watermarks). */
    std::size_t directReclaimBatch = 32;

    /** File pages written back per anonymous page allocated; models
     * the file-cache share of kswapd work that exists under every
     * scheme (the DRAM bars of Fig. 3). */
    double fileWritebackPerAnonAlloc = 0.25;

    TimingParams timing;
    EnergyParams energy;

    /** Deterministic seed for the workload instances. */
    std::uint64_t seed = 42;

    /** Gauge-sampling cadence in simulated milliseconds for the
     * telemetry flight recorder (0 = never sample). Only consulted
     * while telemetry is enabled; sampling reads simulator state and
     * never mutates it, so the knob cannot change a report byte. */
    std::size_t timelineIntervalMs = 1000;

    /** Per-page application-side touch cost (read/first-use work). */
    Tick pageTouchNs = 1500;
};

} // namespace ariadne

#endif // ARIADNE_SYS_SYSTEM_CONFIG_HH
