/**
 * @file
 * Error currency of the report subsystem.
 *
 * Everything under src/report/ deals in user-supplied artifacts —
 * partial report files, shard specs, merge requests — so problems are
 * configuration errors, never programming errors: they throw
 * ReportError (or a subclass) rather than calling fatal(), and the
 * CLI maps them to exit code 2 exactly like driver::SpecError.
 */

#ifndef ARIADNE_REPORT_REPORT_ERROR_HH
#define ARIADNE_REPORT_REPORT_ERROR_HH

#include <stdexcept>

namespace ariadne::report
{

/** Invalid shard spec, partial report or merge request. */
class ReportError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

} // namespace ariadne::report

#endif // ARIADNE_REPORT_REPORT_ERROR_HH
