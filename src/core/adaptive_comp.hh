/**
 * @file
 * AdaptiveComp — size-adaptive compression units (§4.3).
 *
 * Maps hotness to compression chunk size (Small for hot, Medium for
 * warm, Large for cold) and tracks *compression units*: a unit is one
 * compressed object in the zpool (or, after writeback, in flash)
 * covering one page (hot/warm) or coldUnitPages() pages batched
 * together (cold). Multi-page units are the source of the worst-case
 * behaviour the paper illustrates in Fig. 9(b): touching any page of
 * a unit decompresses the whole thing.
 */

#ifndef ARIADNE_CORE_ADAPTIVE_COMP_HH
#define ARIADNE_CORE_ADAPTIVE_COMP_HH

#include <cstdint>
#include <vector>

#include "core/config.hh"
#include "mem/flash.hh"
#include "mem/page.hh"
#include "mem/zpool.hh"

namespace ariadne
{

/** Handle to a compression unit. */
using UnitId = std::uint64_t;

/** Sentinel for "no unit". */
constexpr UnitId invalidUnit = UINT64_MAX;

/** One compressed unit: pages, framing, and current storage. */
struct CompUnit
{
    std::vector<PageMeta *> pages;
    std::size_t chunkBytes = 0;
    std::size_t csize = 0;
    /** Hotness of the data when it was compressed. */
    Hotness levelAtCompression = Hotness::Cold;
    /** zpool object when stored in DRAM. */
    ZObjectId object = invalidObject;
    /** Flash slot when written back. */
    FlashSlot flashSlot = invalidFlashSlot;
    bool liveFlag = false;

    std::size_t
    uncompressedBytes() const noexcept
    {
        return pages.size() * pageSize;
    }
};

/** Unit registry plus the hotness -> chunk-size policy. */
class AdaptiveComp
{
  public:
    explicit AdaptiveComp(const AriadneConfig &config) : cfg(config) {}

    /** Chunk size used for data of hotness @p level (Table 5). */
    std::size_t
    chunkFor(Hotness level) const noexcept
    {
        switch (level) {
          case Hotness::Hot: return cfg.smallSize;
          case Hotness::Warm: return cfg.mediumSize;
          default: return cfg.largeSize;
        }
    }

    /** Register a new live unit; pages' objectId fields are set. */
    UnitId create(std::vector<PageMeta *> pages, std::size_t chunk_bytes,
                  std::size_t csize, Hotness level, ZObjectId object);

    /** Access a live unit. */
    CompUnit &unit(UnitId id);
    const CompUnit &unit(UnitId id) const;

    /** True when @p id refers to a live unit. */
    bool live(UnitId id) const noexcept;

    /** Destroy a unit (after its pages were swapped in or freed). */
    void destroy(UnitId id);

    /** Number of live units. */
    std::size_t liveCount() const noexcept { return liveUnits; }

  private:
    AriadneConfig cfg;
    std::vector<CompUnit> units;
    std::vector<UnitId> freeIds;
    std::size_t liveUnits = 0;
};

} // namespace ariadne

#endif // ARIADNE_CORE_ADAPTIVE_COMP_HH
