/**
 * @file
 * Property tests for the batched codec paths: every batch API must
 * produce byte-identical output (and identical sizes) to the
 * one-page-at-a-time stateless calls, for every codec kind, in any
 * batch shape — including empty and single-page batches. This is the
 * contract that lets Zram::compressTail, Ariadne's AL-mode sizing,
 * and PageCompressor::compressedSizeEach batch freely without
 * perturbing exact-mode reports.
 */

#include <gtest/gtest.h>

#include <vector>

#include "codec_test_util.hh"
#include "compress/chunked.hh"
#include "compress/registry.hh"
#include "swap/page_compressor.hh"
#include "workload/apps.hh"
#include "workload/page_synth.hh"

using namespace ariadne;
using namespace ariadne::testutil;

namespace
{

/** A batch of page-sized buffers with varied content classes. */
std::vector<std::vector<std::uint8_t>>
makePages(std::size_t n)
{
    std::vector<std::vector<std::uint8_t>> pages;
    pages.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        switch (i % 4) {
          case 0:
            pages.push_back(mixedBuffer(pageSize, 0x1000 + i));
            break;
          case 1:
            pages.push_back(repetitiveBuffer(pageSize));
            break;
          case 2:
            pages.push_back(randomBuffer(pageSize, 0x2000 + i));
            break;
          default:
            pages.emplace_back(pageSize, 0); // all zeros
            break;
        }
    }
    return pages;
}

std::vector<ConstBytes>
viewsOf(const std::vector<std::vector<std::uint8_t>> &pages)
{
    std::vector<ConstBytes> views;
    views.reserve(pages.size());
    for (const auto &p : pages)
        views.emplace_back(p.data(), p.size());
    return views;
}

class CodecBatch : public ::testing::TestWithParam<CodecKind>
{
};

} // namespace

TEST_P(CodecBatch, CompressBatchBytesMatchOneAtATime)
{
    auto codec = makeCodec(GetParam());
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{7}, std::size_t{16}}) {
        auto pages = makePages(n);
        auto srcs = viewsOf(pages);

        const std::size_t bound = codec->compressBound(pageSize);
        std::vector<std::vector<std::uint8_t>> outs(
            n, std::vector<std::uint8_t>(bound));
        std::vector<MutableBytes> dsts;
        dsts.reserve(n);
        for (auto &o : outs)
            dsts.emplace_back(o.data(), o.size());

        auto sizes = codec->compressBatch(srcs, dsts);
        ASSERT_EQ(sizes.size(), n);

        for (std::size_t i = 0; i < n; ++i) {
            std::vector<std::uint8_t> solo(bound);
            std::size_t solo_size = codec->compress(
                srcs[i], {solo.data(), solo.size()});
            ASSERT_EQ(sizes[i], solo_size) << "page " << i;
            EXPECT_EQ(std::vector<std::uint8_t>(
                          outs[i].begin(),
                          outs[i].begin() +
                              static_cast<long>(sizes[i])),
                      std::vector<std::uint8_t>(
                          solo.begin(),
                          solo.begin() +
                              static_cast<long>(solo_size)))
                << "page " << i;
        }
    }
}

TEST_P(CodecBatch, SizeBatchMatchesStatelessSizes)
{
    auto codec = makeCodec(GetParam());
    for (std::size_t n : {std::size_t{0}, std::size_t{1},
                          std::size_t{9}}) {
        auto pages = makePages(n);
        auto srcs = viewsOf(pages);
        auto sizes = codec->sizeBatch(srcs);
        ASSERT_EQ(sizes.size(), n);
        std::vector<std::uint8_t> dst(codec->compressBound(pageSize));
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_EQ(sizes[i],
                      codec->compress(srcs[i],
                                      {dst.data(), dst.size()}))
                << "page " << i;
    }
}

TEST_P(CodecBatch, SharedStateIsOrderInsensitive)
{
    // One BatchState reused across the whole batch, pages compressed
    // twice in different orders: every output must equal the
    // stateless result both times.
    auto codec = makeCodec(GetParam());
    auto pages = makePages(6);
    auto srcs = viewsOf(pages);
    auto state = codec->makeBatchState();
    std::vector<std::uint8_t> dst(codec->compressBound(pageSize));
    std::vector<std::uint8_t> solo(codec->compressBound(pageSize));

    auto check = [&](std::size_t i) {
        std::size_t got = codec->compress(
            srcs[i], {dst.data(), dst.size()}, state.get());
        std::size_t want =
            codec->compress(srcs[i], {solo.data(), solo.size()});
        ASSERT_EQ(got, want) << "page " << i;
        EXPECT_TRUE(std::equal(dst.begin(),
                               dst.begin() + static_cast<long>(got),
                               solo.begin()))
            << "page " << i;
    };
    for (std::size_t i = 0; i < srcs.size(); ++i)
        check(i);
    for (std::size_t i = srcs.size(); i-- > 0;)
        check(i);
}

TEST_P(CodecBatch, ChunkedFrameStatefulMatchesStateless)
{
    auto codec = makeCodec(GetParam());
    auto state = codec->makeBatchState();
    std::vector<std::uint8_t> out;
    std::vector<std::uint8_t> scratch;
    for (std::size_t chunk : {std::size_t{1024}, std::size_t{4096}}) {
        for (const auto &page : makePages(5)) {
            ConstBytes src{page.data(), page.size()};
            auto plain = ChunkedFrame::compress(*codec, src, chunk);
            auto stateful =
                ChunkedFrame::compress(*codec, src, chunk,
                                       state.get());
            EXPECT_EQ(plain, stateful);
            std::size_t n = ChunkedFrame::compressInto(
                *codec, src, chunk, state.get(), out, scratch);
            ASSERT_EQ(n, plain.size());
            EXPECT_EQ(out, plain);
        }
    }
}

TEST_P(CodecBatch, CompressedSizeEachMatchesOne)
{
    // The PageCompressor batch-sizing path (what Zram's reclaim tail
    // and Ariadne's AL mode call) against the memoized per-page path,
    // with a cold cache on each side so every size is computed.
    PageSynthesizer synth(standardApps());
    auto codec = makeCodec(GetParam());

    std::vector<PageRef> pages;
    for (std::uint32_t i = 0; i < 24; ++i)
        pages.push_back(PageRef{PageKey{1000 + (i % 3), i * 17}, i % 2});

    PageCompressor batch_side(synth);
    std::vector<std::size_t> sizes;
    batch_side.compressedSizeEach(pages, *codec, 1024, sizes);
    ASSERT_EQ(sizes.size(), pages.size());

    PageCompressor one_side(synth);
    for (std::size_t i = 0; i < pages.size(); ++i)
        EXPECT_EQ(sizes[i], one_side.compressedSizeOne(pages[i],
                                                       *codec, 1024))
            << "page " << i;

    // And the batch path memoized every entry: a re-run is all hits.
    std::uint64_t misses_before = batch_side.cacheMisses();
    batch_side.compressedSizeEach(pages, *codec, 1024, sizes);
    EXPECT_EQ(batch_side.cacheMisses(), misses_before);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CodecBatch, ::testing::ValuesIn(allCodecKinds()),
    [](const ::testing::TestParamInfo<CodecKind> &info) {
        return codecKindName(info.param);
    });
