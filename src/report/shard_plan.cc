#include "report/shard_plan.hh"

#include <algorithm>
#include <cctype>

namespace ariadne::report
{

namespace
{

bool
parseCount(const std::string &text, std::size_t &out)
{
    if (text.empty() ||
        !std::all_of(text.begin(), text.end(), [](unsigned char c) {
            return std::isdigit(c);
        }))
        return false;
    try {
        out = std::stoull(text);
    } catch (const std::out_of_range &) {
        return false;
    }
    return true;
}

} // namespace

ShardPlan
ShardPlan::parse(const std::string &text)
{
    auto fail = [&](const std::string &why) -> ShardPlan {
        throw ReportError("invalid shard spec '" + text + "': " + why +
                          " (expected INDEX/COUNT with 1 <= INDEX <= "
                          "COUNT, e.g. 2/4)");
    };
    auto slash = text.find('/');
    if (slash == std::string::npos)
        return fail("missing '/'");
    ShardPlan plan;
    if (!parseCount(text.substr(0, slash), plan.index) ||
        !parseCount(text.substr(slash + 1), plan.count))
        return fail("INDEX and COUNT must be decimal integers");
    if (plan.count == 0)
        return fail("COUNT must be >= 1");
    if (plan.index == 0 || plan.index > plan.count)
        return fail("INDEX must be in [1, COUNT]");
    return plan;
}

std::string
ShardPlan::toString() const
{
    return std::to_string(index) + "/" + std::to_string(count);
}

std::pair<std::size_t, std::size_t>
ShardPlan::sessionRange(std::size_t fleet) const noexcept
{
    // Balanced contiguous ranges: shard i gets
    // [ (i-1)*fleet/count, i*fleet/count ). Integer arithmetic tiles
    // [0, fleet) exactly, with sizes differing by at most one. The
    // products go through 128 bits: COUNT is unbounded user input,
    // and a wrapped product would yield begin > end.
    auto cut = [&](std::size_t i) {
        return static_cast<std::size_t>(
            static_cast<unsigned __int128>(i) * fleet / count);
    };
    return {cut(index - 1), cut(index)};
}

bool
ShardPlan::ownsVariant(std::size_t variant_index) const noexcept
{
    return variant_index % count == index - 1;
}

} // namespace ariadne::report
