/**
 * @file
 * Daily-usage example: users switch apps >100 times a day (§1).
 *
 * Simulates 120 app switches across the ten standard apps under ZRAM
 * and under Ariadne, and reports the relaunch-latency distribution,
 * comp/decomp CPU, and PreDecomp effectiveness — the end-to-end user
 * experience the paper optimizes.
 *
 * Run:  ./build/examples/daily_usage
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sim/rng.hh"
#include "sys/session.hh"
#include "workload/apps.hh"

using namespace ariadne;

namespace
{

struct DayResult
{
    std::string name;
    std::vector<double> relaunchMs;
    double compDecompCpuMs = 0.0;
    std::uint64_t stagedHits = 0;
};

DayResult
runDay(SchemeKind kind)
{
    SystemConfig cfg;
    cfg.scale = 0.0625;
    cfg.scheme = kind;
    cfg.ariadne = AriadneConfig::parse("EHL-1K-2K-16K");

    MobileSystem sys(cfg, standardApps());
    SessionDriver driver(sys);
    driver.warmUpAllApps();

    DayResult result;
    result.name = sys.scheme().name();
    auto uids = sys.appIds();
    // Round-robin revisits maximize LRU reuse distance — the worst
    // (and common) case where every relaunch finds its data evicted.
    for (int sw = 0; sw < 120; ++sw) {
        AppId uid = uids[static_cast<std::size_t>(sw) % uids.size()];
        RelaunchStats st = sys.appRelaunch(uid);
        result.relaunchMs.push_back(
            ticksToMs(st.fullScaleNs(cfg.scale)));
        result.stagedHits += st.stagedHits;
        sys.appExecute(uid, 2_s);
        sys.appBackground(uid);
        sys.idle(1_s);
    }
    result.compDecompCpuMs =
        static_cast<double>(sys.cpu().compDecompTotal()) / 1e6 /
        cfg.scale;
    return result;
}

void
report(const DayResult &r)
{
    auto sorted = r.relaunchMs;
    std::sort(sorted.begin(), sorted.end());
    double sum = 0.0;
    for (double v : sorted)
        sum += v;
    std::printf("%-22s avg %6.1f ms  p50 %6.1f ms  p95 %6.1f ms  "
                "comp+decomp CPU %8.1f ms  staged hits %llu\n",
                r.name.c_str(), sum / static_cast<double>(sorted.size()),
                sorted[sorted.size() / 2],
                sorted[sorted.size() * 95 / 100], r.compDecompCpuMs,
                static_cast<unsigned long long>(r.stagedHits));
}

} // namespace

int
main()
{
    std::printf("Daily usage: 120 app switches across 10 apps "
                "(full-scale estimates)\n\n");
    DayResult zram = runDay(SchemeKind::Zram);
    DayResult ariadne_day = runDay(SchemeKind::Ariadne);
    report(zram);
    report(ariadne_day);

    double zram_sum = 0.0, ariadne_sum = 0.0;
    for (double v : zram.relaunchMs)
        zram_sum += v;
    for (double v : ariadne_day.relaunchMs)
        ariadne_sum += v;
    std::printf("\nOver the day, Ariadne saves %.1f seconds of "
                "relaunch waiting (%.0f%% reduction).\n",
                (zram_sum - ariadne_sum) / 1000.0,
                100.0 * (1.0 - ariadne_sum / zram_sum));
    return 0;
}
