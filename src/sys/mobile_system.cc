#include "sys/mobile_system.hh"

#include <algorithm>

#include "mem/flash.hh"
#include "mem/zpool.hh"
#include "sim/log.hh"
#include "telemetry/journey.hh"
#include "telemetry/telemetry.hh"
#include "telemetry/timeline.hh"
#include "telemetry/trace_log.hh"

namespace ariadne
{

namespace
{

// Hot-path probes (subsystem.verb). Namespace-scope statics so the
// name→slot interning happens once, before any hot loop.
telemetry::Counter c_touch("sys.touch");
telemetry::Counter c_alloc("sys.page_alloc");
telemetry::Counter c_majorFault("sys.major_fault");
telemetry::Counter c_lostRecreate("sys.lost_recreate");
telemetry::Counter c_launch("sys.launch");
telemetry::Counter c_relaunch("sys.relaunch");
telemetry::Counter c_background("sys.background");
telemetry::Counter c_execute("sys.execute");
telemetry::Counter c_idle("sys.idle");
telemetry::DurationProbe d_launch("sys.launch");
telemetry::DurationProbe d_execute("sys.execute");
telemetry::DurationProbe d_relaunch("sys.relaunch");

// Flight-recorder gauges, sampled on the timeline_interval_ms
// cadence (sampleGauges). Values are simulated state at simulated
// times, so summaries are thread- and shard-invariant — except the
// compressor.memo.* rate, whose backing memo is shared across the
// sessions one worker happens to run (volatile, like the memo
// counters).
telemetry::TimelineGauge g_freePages("mem.free_pages");
telemetry::TimelineGauge g_watermarkHeadroom("mem.watermark_headroom");
telemetry::TimelineGauge g_zpoolBytes("swap.zpool_bytes");
telemetry::TimelineGauge g_flashBytes("swap.flash_bytes");
telemetry::TimelineGauge g_compressedBytes("swap.compressed_bytes");
telemetry::TimelineGauge g_hotPages("hotness.hot_pages");
telemetry::TimelineGauge g_warmPages("hotness.warm_pages");
telemetry::TimelineGauge g_coldPages("hotness.cold_pages");
telemetry::TimelineGauge
    g_cacheHitPermille("compressor.cache_hit_permille");
telemetry::TimelineGauge
    g_memoHitPermille("compressor.memo.hit_permille");
telemetry::TimelineGauge g_cpuBusyPermille("cpu.busy_permille");

// Latency distributions of *simulated* nanoseconds, with per-app
// breakdowns for the leading uids.
telemetry::AppHistogram h_faultNs("sys.major_fault_ns");
telemetry::AppHistogram h_relaunchNs("sys.relaunch_ns");

} // namespace

MobileSystem::MobileSystem(const SystemConfig &config,
                           const std::vector<AppProfile> &profiles,
                           PageArena *shared_arena,
                           CompressionMemo *memo)
    : cfg(config), timing(cfg.timing), appProfiles(profiles),
      ownedArena(shared_arena ? nullptr
                              : std::make_unique<PageArena>()),
      arena(shared_arena ? *shared_arena : *ownedArena)
{
    fatalIf(appProfiles.empty(), "MobileSystem needs at least one app");
    // A shared arena carries the previous session's records; recycle
    // them (an owned arena is empty, so this is free).
    arena.reset();

    // Size the anonymous-page budget. Ideal-DRAM-style schemes get
    // enough memory to never reclaim (the paper's optimistic bound).
    std::size_t dram_bytes = static_cast<std::size_t>(
        static_cast<double>(cfg.dramBytes) * cfg.scale);
    if (SchemeRegistry::instance().at(cfg.scheme).unboundedDram) {
        std::size_t need = 0;
        for (const auto &p : appProfiles)
            need += p.anonBytes5min;
        dram_bytes = static_cast<std::size_t>(
                         static_cast<double>(need) * cfg.scale) *
                         2 +
                     (std::size_t{64} << 20);
    }
    dramModel = std::make_unique<Dram>(dram_bytes, cfg.lowWatermark,
                                       cfg.highWatermark);

    synth = std::make_unique<PageSynthesizer>(appProfiles);
    pageCompressor = std::make_unique<PageCompressor>(*synth);
    pageCompressor->attachMemo(memo);
    makeScheme();
    reclaimDaemon = std::make_unique<Kswapd>(
        SwapContext{simClock, timing, cpuAccount, activity, *dramModel,
                    *pageCompressor, arena},
        *swapScheme);

    for (const auto &p : appProfiles) {
        instances.emplace(
            std::piecewise_construct, std::forward_as_tuple(p.uid),
            std::forward_as_tuple(p, cfg.scale,
                                  mix64(cfg.seed ^ p.uid)));
    }

    // Arm the flight recorder's sampling cadence. Only when telemetry
    // is on: disarmed, maybeSample() is one load and a branch.
    if (telemetry::enabled() && cfg.timelineIntervalMs > 0) {
        sampleIntervalNs =
            static_cast<Tick>(cfg.timelineIntervalMs) * 1'000'000;
        nextSampleNs = sampleIntervalNs;
    }
}

void
MobileSystem::makeScheme()
{
    SwapContext ctx{simClock, timing,     cpuAccount,     activity,
                    *dramModel, *pageCompressor, arena};

    swapScheme = SchemeRegistry::instance().build(
        cfg.scheme, ctx, cfg.schemeParams, cfg.scale);

    // Offline profiling seed: expected hot pages per app (§4.2),
    // derived from the profiles this system carries — which is why
    // the system layer, not the scheme factory, performs it. Any
    // scheme with the hotness capability participates; the
    // `seed_profiles` knob is the D1 ablation axis.
    HotnessAware *predictor = swapScheme->hotness();
    if (predictor &&
        cfg.schemeParams.getBool("seed_profiles", true)) {
        for (const auto &p : appProfiles) {
            auto hot_pages = static_cast<std::size_t>(
                p.hotFraction *
                static_cast<double>(p.anonBytes10s) * cfg.scale /
                static_cast<double>(pageSize));
            predictor->seedProfile(
                p.uid, std::max<std::size_t>(1, hot_pages));
        }
    }
}

AppInstance &
MobileSystem::app(AppId uid)
{
    auto it = instances.find(uid);
    panicIf(it == instances.end(), "unknown app uid");
    return it->second;
}

std::vector<AppId>
MobileSystem::appIds() const
{
    std::vector<AppId> uids;
    uids.reserve(appProfiles.size());
    for (const auto &p : appProfiles)
        uids.push_back(p.uid);
    return uids;
}

MobileSystem::AppDir &
MobileSystem::dirFor(AppId uid)
{
    auto it = std::lower_bound(
        appDirs.begin(), appDirs.end(), uid,
        [](const std::unique_ptr<AppDir> &d, AppId u) {
            return d->uid < u;
        });
    if (it != appDirs.end() && (*it)->uid == uid)
        return **it;
    auto dir = std::make_unique<AppDir>();
    dir->uid = uid;
    return **appDirs.insert(it, std::move(dir));
}

PageMeta &
MobileSystem::metaFor(const PageKey &key)
{
    PageMeta *meta = dirFor(key.uid).page(key.pfn);
    panicIf(!meta, "metaFor on unknown page");
    return *meta;
}

void
MobileSystem::chargeFileWriteback(std::size_t new_pages)
{
    filePageDebt += cfg.fileWritebackPerAnonAlloc *
                    static_cast<double>(new_pages);
    if (filePageDebt >= 1.0) {
        auto pages = static_cast<std::uint64_t>(filePageDebt);
        filePageDebt -= static_cast<double>(pages);
        // File writeback runs on the kswapd thread; CPU only.
        cpuAccount.charge(CpuRole::FileWriteback,
                          pages * timing.params().fileWritebackCpuNs);
        activity.flashWriteBytes += pages * pageSize;
    }
}

void
MobileSystem::maybeKswapd()
{
    if (!inRelaunch)
        reclaimDaemon->maybeRun();
}

void
MobileSystem::sampleGauges()
{
    Tick now = simClock.now();
    // One sample per crossing: after a long idle jump, one point
    // lands at `now` and the cadence realigns to the next boundary.
    nextSampleNs = now - now % sampleIntervalNs + sampleIntervalNs;

    std::size_t free = dramModel->freePages();
    std::size_t low = dramModel->lowWatermarkPages();
    g_freePages.sample(now, free);
    g_watermarkHeadroom.sample(now, free > low ? free - low : 0);

    if (const Zpool *pool = swapScheme->zpool())
        g_zpoolBytes.sample(now, pool->storedBytes());
    if (const FlashDevice *fl = swapScheme->flash())
        g_flashBytes.sample(now, fl->liveBytes());
    g_compressedBytes.sample(now,
                             swapScheme->compressedStoredBytes());

    std::size_t hot = 0, warm = 0, cold = 0;
    if (swapScheme->levelPopulations(hot, warm, cold)) {
        g_hotPages.sample(now, hot);
        g_warmPages.sample(now, warm);
        g_coldPages.sample(now, cold);
    }

    auto permille = [](std::uint64_t part, std::uint64_t whole) {
        return whole ? part * 1000 / whole : 0;
    };
    std::uint64_t ch = pageCompressor->cacheHits();
    std::uint64_t cm = pageCompressor->cacheMisses();
    if (ch + cm)
        g_cacheHitPermille.sample(now, permille(ch, ch + cm));
    if (const CompressionMemo *memo = pageCompressor->attachedMemo()) {
        std::uint64_t mh = memo->hits();
        std::uint64_t mm = memo->misses();
        if (mh + mm)
            g_memoHitPermille.sample(now, permille(mh, mh + mm));
    }
    if (now)
        g_cpuBusyPermille.sample(
            now, permille(cpuAccount.grandTotal(), now));
}

void
MobileSystem::processTouch(AppDir &dir, const TouchEvent &ev,
                           RelaunchStats *stats)
{
    c_touch.add();
    if (stats)
        ++stats->pagesTouched;
    if (dir.capturing)
        dir.capture.set(ev.pfn);

    PageMeta *slot = dir.page(ev.pfn);
    if (!slot) {
        // First allocation of this page.
        PageMeta &ref = *arena.alloc();
        ref.key = PageKey{dir.uid, ev.pfn};
        ref.version = ev.version;
        ref.truth = ev.truth; // alloc() defaults location to Resident
        if (ev.pfn >= dir.pages.size())
            dir.pages.resize(
                std::max<std::size_t>(ev.pfn + 1,
                                      dir.pages.size() * 2),
                nullptr);
        dir.pages[ev.pfn] = &ref;

        c_alloc.add();
        if (!dramModel->allocate(1)) {
            swapScheme->reclaim(cfg.directReclaimBatch, true);
            panicIf(!dramModel->allocate(1),
                    "allocation failed after direct reclaim");
        }
        telemetry::journeyMark(dir.uid, ev.pfn,
                               telemetry::JourneyStep::Alloc,
                               simClock.now());
        swapScheme->onAdmit(ref);
        cpuAccount.charge(CpuRole::AppExecution, cfg.pageTouchNs);
        simClock.advance(cfg.pageTouchNs);
        activity.dramBytes += pageSize;
        chargeFileWriteback(1);
        if (!inRelaunch)
            maybeKswapd();
        maybeSample();
        return;
    }

    PageMeta &meta = *slot;
    meta.truth = ev.truth;

    switch (arena.location(meta)) {
      case PageLocation::Resident:
        cpuAccount.charge(CpuRole::AppExecution, cfg.pageTouchNs);
        simClock.advance(cfg.pageTouchNs);
        activity.dramBytes += pageSize;
        swapScheme->onAccess(meta);
        break;

      case PageLocation::Lost: {
        // Data was dropped under pressure; the app must rebuild it.
        c_lostRecreate.add();
        ++lostPages;
        if (stats)
            ++stats->lostRecreated;
        if (!dramModel->allocate(1)) {
            swapScheme->reclaim(cfg.directReclaimBatch, true);
            panicIf(!dramModel->allocate(1),
                    "allocation failed after direct reclaim");
        }
        arena.setLocation(meta, PageLocation::Resident);
        swapScheme->onAdmit(meta);
        Tick rebuild = cfg.pageTouchNs + timing.params().dramPageCopyNs;
        cpuAccount.charge(CpuRole::AppExecution, rebuild);
        simClock.advance(rebuild);
        activity.dramBytes += pageSize;
        telemetry::journeyMark(dir.uid, ev.pfn,
                               telemetry::JourneyStep::Recreate,
                               simClock.now());
        break;
      }

      default: {
        c_majorFault.add();
        SwapInResult res = swapScheme->swapIn(meta);
        if (stats) {
            ++stats->majorFaults;
            if (res.stagedHit)
                ++stats->stagedHits;
            if (res.fromFlash)
                ++stats->flashFaults;
        }
        h_faultNs.record(dir.uid, res.latencyNs);
        telemetry::journeyMark(dir.uid, ev.pfn,
                               telemetry::JourneyStep::SwapIn,
                               simClock.now(), res.latencyNs);
        cpuAccount.charge(CpuRole::AppExecution, cfg.pageTouchNs);
        simClock.advance(cfg.pageTouchNs);
        break;
      }
    }
    meta.version = ev.version;
    arena.setLastAccess(meta, simClock.now());
    if (!inRelaunch)
        maybeKswapd();
    maybeSample();
}

void
MobileSystem::runTouches(AppId uid,
                         const std::vector<TouchEvent> &events,
                         RelaunchStats *stats)
{
    AppDir &dir = dirFor(uid);
    for (const auto &ev : events) {
        if (observer)
            observer->onTouch(uid, ev, simClock.now());
        processTouch(dir, ev, stats);
    }
}

void
MobileSystem::appColdLaunch(AppId uid)
{
    runColdLaunch(uid, app(uid).coldLaunch());
}

void
MobileSystem::runColdLaunch(AppId uid,
                            const std::vector<TouchEvent> &events)
{
    c_launch.add();
    telemetry::ScopedTimer timer(d_launch);
    telemetry::TraceSpan span("cold_launch", "uid", uid);
    if (observer)
        observer->onOp(TraceOp::Launch, uid, 0, simClock.now());
    swapScheme->onLaunch(uid);
    Tick create = timing.params().processCreateNs;
    cpuAccount.charge(CpuRole::AppExecution, create);
    simClock.advance(create);
    runTouches(uid, events, nullptr);
    maybeKswapd();
}

void
MobileSystem::appExecute(AppId uid, Tick dt)
{
    runExecute(uid, dt, app(uid).execute(dt));
}

void
MobileSystem::runExecute(AppId uid, Tick dt,
                         const std::vector<TouchEvent> &events)
{
    c_execute.add();
    telemetry::ScopedTimer timer(d_execute);
    if (observer)
        observer->onOp(TraceOp::Execute, uid, dt, simClock.now());
    Tick start = simClock.now();
    runTouches(uid, events, nullptr);
    simClock.advanceTo(start + dt);
    maybeKswapd();
    maybeSample();
}

void
MobileSystem::appBackground(AppId uid)
{
    c_background.add();
    if (observer)
        observer->onOp(TraceOp::Background, uid, 0, simClock.now());
    swapScheme->onBackground(uid);
    maybeKswapd();
}

RelaunchStats
MobileSystem::appRelaunch(AppId uid)
{
    return runRelaunch(uid, app(uid).relaunch());
}

RelaunchStats
MobileSystem::runRelaunch(AppId uid,
                          const std::vector<TouchEvent> &events)
{
    c_relaunch.add();
    telemetry::ScopedTimer timer(d_relaunch);
    telemetry::TraceSpan span("relaunch", "uid", uid);
    if (observer)
        observer->onOp(TraceOp::Relaunch, uid, 0, simClock.now());
    RelaunchStats stats;
    stats.uid = uid;

    // Capture the scheme's prediction before the relaunch clears it.
    std::vector<PageKey> predicted;
    if (const HotnessAware *predictor = swapScheme->hotness())
        predicted = predictor->predictedHotSet(uid);

    swapScheme->onRelaunchStart(uid);
    inRelaunch = true;
    Stopwatch sw(simClock);

    Tick base = timing.params().relaunchBaseNs;
    cpuAccount.charge(CpuRole::AppExecution, base);
    simClock.advance(base);

    runTouches(uid, events, &stats);

    stats.totalNs = sw.elapsed();
    stats.baseNs = base;
    stats.pagingNs = stats.totalNs - base;
    h_relaunchNs.record(uid, stats.totalNs);

    inRelaunch = false;
    swapScheme->onRelaunchEnd(uid);
    maybeKswapd();
    if (observer)
        observer->onOp(TraceOp::RelaunchEnd, uid, 0, simClock.now());

    // Coverage of the prediction against what the relaunch touched.
    if (!predicted.empty()) {
        PfnBitmap predicted_set;
        for (const auto &key : predicted)
            predicted_set.set(key.pfn);
        std::size_t covered = 0;
        std::size_t distinct = 0;
        PfnBitmap seen;
        for (const auto &ev : events) {
            if (seen.set(ev.pfn)) {
                ++distinct;
                if (predicted_set.test(ev.pfn))
                    ++covered;
            }
        }
        stats.predictedPages = predicted.size();
        stats.coverage = distinct == 0
                             ? 0.0
                             : static_cast<double>(covered) /
                                   static_cast<double>(distinct);
    }
    return stats;
}

void
MobileSystem::idle(Tick dt)
{
    c_idle.add();
    if (observer)
        observer->onOp(TraceOp::Idle, invalidApp, dt, simClock.now());
    simClock.advance(dt);
    maybeKswapd();
    maybeSample();
}

void
MobileSystem::startTouchCapture(AppId uid)
{
    AppDir &dir = dirFor(uid);
    dir.capture.clear();
    dir.capturing = true;
}

std::vector<Pfn>
MobileSystem::stopTouchCapture(AppId uid)
{
    AppDir &dir = dirFor(uid);
    if (!dir.capturing)
        return {};
    std::vector<Pfn> result = dir.capture.toSortedVector();
    dir.capture.clear();
    dir.capturing = false;
    return result;
}

Tick
MobileSystem::kswapdCpuNs() const noexcept
{
    return reclaimDaemon->cpuNs() +
           swapScheme->backgroundReclaimCpuNs() +
           cpuAccount.total(CpuRole::FileWriteback);
}

ActivityTotals
MobileSystem::activityTotals() const
{
    ActivityTotals totals = activity;
    totals.wallTimeNs = simClock.now();
    totals.cpuBusyNs = cpuAccount.grandTotal();
    return totals;
}

double
MobileSystem::energyJoules() const
{
    return EnergyModel(cfg.energy).joules(activityTotals());
}

double
MobileSystem::windowEnergyJoules(const ActivityTotals &before,
                                 Tick wall_ns, double scale) const
{
    ActivityTotals totals = activityTotals();
    totals.cpuBusyNs -= before.cpuBusyNs;
    totals.dramBytes -= before.dramBytes;
    totals.flashReadBytes -= before.flashReadBytes;
    totals.flashWriteBytes -= before.flashWriteBytes;
    totals.wallTimeNs = wall_ns;
    totals.cpuBusyNs = static_cast<Tick>(
        static_cast<double>(totals.cpuBusyNs) / scale);
    totals.dramBytes = static_cast<std::size_t>(
        static_cast<double>(totals.dramBytes) / scale);
    totals.flashReadBytes = static_cast<std::size_t>(
        static_cast<double>(totals.flashReadBytes) / scale);
    totals.flashWriteBytes = static_cast<std::size_t>(
        static_cast<double>(totals.flashWriteBytes) / scale);
    return EnergyModel(cfg.energy).joules(totals);
}

} // namespace ariadne
