#include "mem/page.hh"

namespace ariadne
{

const char *
hotnessName(Hotness h) noexcept
{
    switch (h) {
      case Hotness::Hot: return "hot";
      case Hotness::Warm: return "warm";
      case Hotness::Cold: return "cold";
      default: return "unknown";
    }
}

} // namespace ariadne
