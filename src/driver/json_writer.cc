#include "driver/json_writer.hh"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "analysis/report.hh"
#include "sim/log.hh"
#include "sim/stats.hh"

namespace ariadne::driver
{

void
JsonWriter::newline()
{
    if (indentWidth <= 0)
        return;
    out << "\n"
        << std::string(scopes.size() *
                           static_cast<std::size_t>(indentWidth),
                       ' ');
}

void
JsonWriter::beforeValue()
{
    if (scopes.empty())
        return;
    if (scopes.back() == Scope::Object) {
        panicIf(!keyPending, "JSON object value emitted without a key");
        keyPending = false;
        return;
    }
    if (populated.back())
        out << ",";
    newline();
    populated.back() = true;
}

void
JsonWriter::beforeKey()
{
    panicIf(scopes.empty() || scopes.back() != Scope::Object,
            "JSON key emitted outside an object");
    panicIf(keyPending, "JSON key emitted while a value was expected");
    if (populated.back())
        out << ",";
    newline();
    populated.back() = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out << "{";
    scopes.push_back(Scope::Object);
    populated.push_back(false);
}

void
JsonWriter::endObject()
{
    panicIf(scopes.empty() || scopes.back() != Scope::Object,
            "unbalanced JSON endObject");
    panicIf(keyPending, "JSON object closed with a dangling key");
    bool had = populated.back();
    scopes.pop_back();
    populated.pop_back();
    if (had)
        newline();
    out << "}";
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out << "[";
    scopes.push_back(Scope::Array);
    populated.push_back(false);
}

void
JsonWriter::endArray()
{
    panicIf(scopes.empty() || scopes.back() != Scope::Array,
            "unbalanced JSON endArray");
    bool had = populated.back();
    scopes.pop_back();
    populated.pop_back();
    if (had)
        newline();
    out << "]";
}

void
JsonWriter::key(const std::string &name)
{
    beforeKey();
    out << "\"" << escape(name) << "\": ";
    keyPending = true;
}

void
JsonWriter::value(const std::string &v)
{
    beforeValue();
    out << "\"" << escape(v) << "\"";
}

void
JsonWriter::value(const char *v)
{
    value(std::string(v));
}

void
JsonWriter::value(double v)
{
    beforeValue();
    out << formatDouble(v);
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    out << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    out << v;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    out << (v ? "true" : "false");
}

void
JsonWriter::nullValue()
{
    beforeValue();
    out << "null";
}

std::string
JsonWriter::escape(const std::string &s)
{
    std::string result;
    result.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': result += "\\\""; break;
          case '\\': result += "\\\\"; break;
          case '\b': result += "\\b"; break;
          case '\f': result += "\\f"; break;
          case '\n': result += "\\n"; break;
          case '\r': result += "\\r"; break;
          case '\t': result += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                result += buf;
            } else {
                result += static_cast<char>(c);
            }
        }
    }
    return result;
}

std::string
JsonWriter::formatDouble(double v)
{
    if (!std::isfinite(v))
        return "null";
    char buf[64];
    auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
    panicIf(ec != std::errc(), "double formatting failed");
    std::string s(buf, ptr);
    // "1e+20" and "1" are valid JSON numbers; nothing more to do.
    return s;
}

void
writeJson(JsonWriter &w, const StatRegistry &registry)
{
    w.beginObject();
    w.key("counters");
    w.beginObject();
    for (const auto &[name, c] : registry.allCounters())
        w.field(name, c->value());
    w.endObject();
    w.key("scalars");
    w.beginObject();
    for (const auto &[name, s] : registry.allScalars()) {
        w.key(name);
        w.beginObject();
        w.field("mean", s->mean());
        w.field("min", s->min());
        w.field("max", s->max());
        w.field("sum", s->sum());
        w.field("samples", s->samples());
        w.endObject();
    }
    w.endObject();
    w.endObject();
}

void
writeJson(JsonWriter &w, const ReportTable &table)
{
    const auto &columns = table.columnNames();
    w.beginArray();
    for (std::size_t r = 0; r < table.rows(); ++r) {
        const auto &cells = table.row(r);
        w.beginObject();
        for (std::size_t c = 0; c < columns.size(); ++c)
            w.field(columns[c], cells[c]);
        w.endObject();
    }
    w.endArray();
}

} // namespace ariadne::driver
