#include "swap/page_compressor.hh"

#include "telemetry/telemetry.hh"

namespace ariadne
{

namespace
{

telemetry::Counter c_cacheHit("compressor.cache_hit");
telemetry::Counter c_cacheMiss("compressor.cache_miss");

// Per-codec host-time compression cost, indexed by CodecKind. These
// are the only probes measuring *real* compression work (the schemes
// charge modeled sim-time separately).
telemetry::DurationProbe &
compressProbe(CodecKind kind)
{
    static telemetry::DurationProbe probes[] = {
        telemetry::DurationProbe("compressor.compress.lz4"),
        telemetry::DurationProbe("compressor.compress.lzo"),
        telemetry::DurationProbe("compressor.compress.bdi"),
        telemetry::DurationProbe("compressor.compress.null"),
    };
    auto i = static_cast<std::size_t>(kind);
    return probes[i < 4 ? i : 3];
}

} // namespace

std::size_t
PageCompressor::compressedSizeOne(const PageRef &page,
                                  const Codec &codec,
                                  std::size_t chunk_bytes)
{
    CacheKey key{page.key.uid, page.key.pfn, page.version,
                 static_cast<std::uint8_t>(codec.kind()),
                 static_cast<std::uint32_t>(chunk_bytes)};
    auto it = cache.find(key);
    if (it != cache.end()) {
        c_cacheHit.add();
        ++hits;
        return it->second;
    }
    c_cacheMiss.add();
    ++misses;

    telemetry::ScopedTimer timer(compressProbe(codec.kind()));
    std::vector<std::uint8_t> buf(pageSize);
    content.materialize(page.key, page.version,
                        {buf.data(), buf.size()});
    auto frame = ChunkedFrame::compress(
        codec, {buf.data(), buf.size()}, chunk_bytes);
    compressedVolume += pageSize;
    auto csize = static_cast<std::uint32_t>(frame.size());
    cache.emplace(key, csize);
    return csize;
}

std::size_t
PageCompressor::compressedSizeMany(const std::vector<PageRef> &pages,
                                   const Codec &codec,
                                   std::size_t chunk_bytes)
{
    if (pages.empty())
        return 0;
    telemetry::ScopedTimer timer(compressProbe(codec.kind()));
    std::vector<std::uint8_t> buf(pages.size() * pageSize);
    for (std::size_t i = 0; i < pages.size(); ++i) {
        content.materialize(pages[i].key, pages[i].version,
                            {buf.data() + i * pageSize, pageSize});
    }
    auto frame = ChunkedFrame::compress(codec,
                                        {buf.data(), buf.size()},
                                        chunk_bytes);
    compressedVolume += buf.size();
    return frame.size();
}

} // namespace ariadne
