/**
 * @file
 * Quickstart: measure one relaunch under ZRAM and under Ariadne.
 *
 * Builds a small simulated phone with the ten standard apps, runs the
 * paper's target-relaunch scenario for YouTube under the baseline
 * ZRAM scheme and under Ariadne-EHL-1K-2K-16K, and prints the
 * relaunch latencies plus PreDecomp statistics.
 *
 * Run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "sys/session.hh"
#include "workload/apps.hh"

using namespace ariadne;

namespace
{

RelaunchStats
runOnce(const std::string &scheme)
{
    SystemConfig cfg;
    cfg.scale = 0.0625; // 1/16 footprint for a fast demo
    cfg.scheme = scheme;
    if (scheme == "ariadne")
        cfg.schemeParams.set("config", "EHL-1K-2K-16K");

    MobileSystem system(cfg, standardApps());
    SessionDriver driver(system);

    AppId youtube = standardApp("YouTube").uid;
    RelaunchStats stats =
        driver.targetRelaunchScenario(youtube, /*variant=*/0);

    std::printf("%-22s relaunch %7.1f ms (full-scale est. %7.1f ms), "
                "faults %zu, staged hits %zu\n",
                system.scheme().name().c_str(),
                ticksToMs(stats.totalNs),
                ticksToMs(stats.fullScaleNs(cfg.scale)),
                stats.majorFaults, stats.stagedHits);
    return stats;
}

} // namespace

int
main()
{
    std::printf("Ariadne quickstart: YouTube relaunch, 10 apps in "
                "background\n\n");
    RelaunchStats zram = runOnce("zram");
    RelaunchStats ariadne_stats = runOnce("ariadne");
    RelaunchStats dram = runOnce("dram");

    double speedup = ariadne_stats.totalNs
                         ? static_cast<double>(zram.totalNs) /
                               static_cast<double>(ariadne_stats.totalNs)
                         : 0.0;
    std::printf("\nAriadne speeds up the relaunch %.2fx over ZRAM "
                "(DRAM bound: %.1f ms)\n",
                speedup, ticksToMs(dram.totalNs));
    return 0;
}
