/**
 * @file
 * MobileSystem — the top-level integration of the simulator.
 *
 * Composes the virtual device (clock, timing, energy, DRAM budget,
 * kswapd) with one swap scheme and the workload's AppInstances, and
 * exposes the driver API the session layer and the benches use:
 * cold-launch, execute, background, relaunch (measured), idle.
 *
 * Footprints are scaled by `SystemConfig::scale`; per-page costs are
 * scale-invariant, so RelaunchStats::fullScaleNs() reconstructs the
 * paper-scale latency exactly (base + paging / scale).
 */

#ifndef ARIADNE_SYS_MOBILE_SYSTEM_HH
#define ARIADNE_SYS_MOBILE_SYSTEM_HH

#include <map>
#include <memory>

#include "mem/dram.hh"
#include "mem/page_arena.hh"
#include "swap/kswapd.hh"
#include "swap/scheme_registry.hh"
#include "sys/system_config.hh"
#include "workload/generator.hh"
#include "workload/page_synth.hh"
#include "workload/trace.hh"

namespace ariadne
{

/**
 * Observer of the primitive op/touch stream a MobileSystem executes.
 * Trace recording attaches one (driver::TraceRecorder); observation is
 * strictly passive, so an observed run behaves bit-identically to an
 * unobserved one.
 */
class SystemObserver
{
  public:
    virtual ~SystemObserver() = default;

    /** One primitive driver op. @p arg is the duration of
     * Execute/Idle ops and zero otherwise; @p now is the simulated
     * time the op begins. */
    virtual void onOp(TraceOp op, AppId uid, Tick arg, Tick now) = 0;

    /** One page touch executed for @p uid at time @p now. */
    virtual void onTouch(AppId uid, const TouchEvent &ev, Tick now) = 0;
};

/** Measured relaunch outcome (one bar of Fig. 2 / Fig. 10). */
struct RelaunchStats
{
    AppId uid = invalidApp;
    Tick totalNs = 0;  //!< measured at the simulation scale
    Tick baseNs = 0;   //!< scale-independent base (UI/runtime work)
    Tick pagingNs = 0; //!< page-count-proportional part
    std::size_t pagesTouched = 0;
    std::size_t majorFaults = 0;
    std::size_t stagedHits = 0;  //!< PreDecomp buffer hits
    std::size_t flashFaults = 0;
    std::size_t lostRecreated = 0;
    /** Coverage of the scheme's hot prediction (Ariadne only). */
    double coverage = 0.0;
    std::size_t predictedPages = 0;

    /** Reconstruct the paper-scale latency from a scaled run. */
    Tick
    fullScaleNs(double scale) const noexcept
    {
        return baseNs + static_cast<Tick>(
                            static_cast<double>(pagingNs) / scale);
    }
};

/** Top-level simulated device plus workload. */
class MobileSystem
{
  public:
    /**
     * @param config Device and scheme configuration.
     * @param profiles Applications available to this system.
     * @param shared_arena Optional externally owned page arena; it is
     *        reset() and then used in place of an internally owned
     *        one. A fleet worker thread passes the same arena to every
     *        session it runs, so warmed-up slabs are reused instead of
     *        re-faulted per session. Must outlive this system.
     * @param memo Optional externally owned content-keyed compression
     *        memo, attached to this system's PageCompressor. A fleet
     *        worker passes the same memo to every session it runs so
     *        compressed sizes of recurring page contents carry across
     *        sessions (reports stay byte-identical either way). Must
     *        outlive this system.
     */
    MobileSystem(const SystemConfig &config,
                 const std::vector<AppProfile> &profiles,
                 PageArena *shared_arena = nullptr,
                 CompressionMemo *memo = nullptr);

    /** Cold-launch an app (process creation plus first working set). */
    void appColdLaunch(AppId uid);

    /** Run an app in the foreground for @p dt. */
    void appExecute(AppId uid, Tick dt);

    /** Move an app to the background. */
    void appBackground(AppId uid);

    /** Hot-relaunch an app and measure it. */
    RelaunchStats appRelaunch(AppId uid);

    /** Idle wall time (kswapd catches up). */
    void idle(Tick dt);

    // --- Replay primitives ---------------------------------------------
    // The app* driver calls above generate their touch streams from
    // this system's AppInstances; these variants take the stream as an
    // argument instead, which is how trace replay re-executes a
    // recorded session without consulting the workload generator. The
    // generated and the replayed path share one implementation, so a
    // recorded run and its replay are bit-identical.

    /** appColdLaunch with an explicit touch stream. */
    void runColdLaunch(AppId uid, const std::vector<TouchEvent> &events);

    /** appExecute with an explicit touch stream. */
    void runExecute(AppId uid, Tick dt,
                    const std::vector<TouchEvent> &events);

    /** appRelaunch with an explicit touch stream. */
    RelaunchStats runRelaunch(AppId uid,
                              const std::vector<TouchEvent> &events);

    /**
     * Attach (or with nullptr detach) a passive observer of the
     * primitive op/touch stream. Not owned; must outlive the runs it
     * observes.
     */
    void setObserver(SystemObserver *obs) noexcept { observer = obs; }

    /** Start recording every pfn @p uid touches. */
    void startTouchCapture(AppId uid);

    /** Stop recording and return the captured set. */
    std::vector<Pfn> stopTouchCapture(AppId uid);

    // --- Introspection -------------------------------------------------
    const Clock &clock() const noexcept { return simClock; }
    const CpuAccount &cpu() const noexcept { return cpuAccount; }
    SwapScheme &scheme() noexcept { return *swapScheme; }
    const SwapScheme &scheme() const noexcept { return *swapScheme; }
    AppInstance &app(AppId uid);
    /** Uids of every application, in profile order. */
    std::vector<AppId> appIds() const;
    const SystemConfig &config() const noexcept { return cfg; }
    Dram &dram() noexcept { return *dramModel; }
    PageCompressor &compressor() noexcept { return *pageCompressor; }

    /**
     * The scheme's hotness-prediction capability, or nullptr when the
     * scheme has none. Replaces the old concrete-type downcast
     * (MobileSystem::ariadne()), so driver and bench code works with
     * any registered scheme that predicts hot sets.
     */
    HotnessAware *hotness() noexcept { return swapScheme->hotness(); }

    /** kswapd-thread CPU (reclaim daemon + file writeback), Fig. 3. */
    Tick kswapdCpuNs() const noexcept;

    /** Consolidated activity for the energy model. */
    ActivityTotals activityTotals() const;

    /** Scenario energy in Joules (Table 2). */
    double energyJoules() const;

    /**
     * Energy of a measured window: activity since @p before (a prior
     * activityTotals() snapshot) over @p wall_ns of wall time, with
     * the dynamic volumes (CPU, DRAM, flash traffic) rescaled by
     * 1/@p scale back to paper scale. Table 2 measures this after
     * warm-up so identical cold launches cancel across schemes.
     */
    double windowEnergyJoules(const ActivityTotals &before,
                              Tick wall_ns, double scale) const;

    /** Pages recreated after being dropped under pressure. */
    std::uint64_t lostRecreations() const noexcept { return lostPages; }

  private:
    /**
     * Per-app page directory. The workload generator hands out pfns
     * densely from 0, so a flat vector indexed by pfn replaces the
     * old hashed PageKey map: one bounds check plus one load per
     * touch lookup. The touch-capture set is a pfn bitmap for the
     * same reason. PageMeta records themselves live in the arena so
     * their addresses stay stable for the intrusive LruList hooks.
     */
    struct AppDir
    {
        AppId uid = invalidApp;
        std::vector<PageMeta *> pages;
        PfnBitmap capture;
        bool capturing = false;

        PageMeta *
        page(Pfn pfn) const noexcept
        {
            return pfn < pages.size() ? pages[pfn] : nullptr;
        }
    };

    void makeScheme();
    /** Directory for @p uid, created on first use (sorted by uid). */
    AppDir &dirFor(AppId uid);
    PageMeta &metaFor(const PageKey &key);
    void processTouch(AppDir &dir, const TouchEvent &ev,
                      RelaunchStats *stats);
    void runTouches(AppId uid, const std::vector<TouchEvent> &events,
                    RelaunchStats *stats);
    void maybeKswapd();
    void chargeFileWriteback(std::size_t new_pages);

    /** Flight-recorder cadence check: sample the gauges when the
     * simulated clock crossed the next boundary. Disabled (interval
     * 0 at construction) this is one member load and a branch. */
    void
    maybeSample()
    {
        if (nextSampleNs != 0 && simClock.now() >= nextSampleNs)
            sampleGauges();
    }

    /** Read every gauge from live state and advance the cadence.
     * Strictly out-of-band: reads only, never mutates. */
    void sampleGauges();

    SystemConfig cfg;
    Clock simClock;
    TimingModel timing;
    CpuAccount cpuAccount;
    ActivityTotals activity;
    std::unique_ptr<Dram> dramModel;
    std::vector<AppProfile> appProfiles;
    std::unique_ptr<PageSynthesizer> synth;
    std::unique_ptr<PageCompressor> pageCompressor;
    std::unique_ptr<SwapScheme> swapScheme;
    std::unique_ptr<Kswapd> reclaimDaemon;

    /** Backing arena when the caller did not share one. */
    std::unique_ptr<PageArena> ownedArena;
    /** The arena in use (owned or shared); reset by the ctor. */
    PageArena &arena;
    /** App directories sorted by uid (handful of apps; binary
     * search, resolved once per touch batch). */
    std::vector<std::unique_ptr<AppDir>> appDirs;
    std::map<AppId, AppInstance> instances;

    SystemObserver *observer = nullptr;
    bool inRelaunch = false;
    double filePageDebt = 0.0;
    std::uint64_t lostPages = 0;

    /** Gauge-sampling cadence in simulated ns (0 = disarmed; set at
     * construction from cfg.timelineIntervalMs iff telemetry is on). */
    Tick sampleIntervalNs = 0;
    /** Next simulated-time sampling boundary (0 = disarmed). */
    Tick nextSampleNs = 0;
};

} // namespace ariadne

#endif // ARIADNE_SYS_MOBILE_SYSTEM_HH
