/**
 * @file
 * Per-session result types shared by the driver layers.
 *
 * One fleet session produces a SessionResult; WorkloadSources fill it
 * while driving the session (workload_source.hh) and FleetRunner folds
 * it into the fleet aggregate (fleet_runner.hh). Benches read the
 * retained records for per-session detail.
 */

#ifndef ARIADNE_DRIVER_SESSION_RESULT_HH
#define ARIADNE_DRIVER_SESSION_RESULT_HH

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "sys/session.hh"

namespace ariadne::driver
{

/** One measured relaunch inside a session. */
struct RelaunchSample
{
    AppId uid = invalidApp;
    /** Paper-scale latency in milliseconds. */
    double fullScaleMs = 0.0;
    RelaunchStats stats;
};

/** Everything one fleet session produced. */
struct SessionResult
{
    std::size_t index = 0;
    std::uint64_t seed = 0;

    /** Measured relaunches, in program order. */
    std::vector<RelaunchSample> relaunches;

    Tick compCpuNs = 0;
    Tick decompCpuNs = 0;
    Tick kswapdCpuNs = 0;
    Tick grandCpuNs = 0;
    double energyJ = 0.0;
    Tick simulatedNs = 0;

    /** Scheme-wide compression accounting. */
    CompStats comp;
    /** Per-app compression accounting (Fig. 15 reads the target's). */
    std::map<AppId, CompStats> appComp;

    std::uint64_t stagedHits = 0;
    std::uint64_t majorFaults = 0;
    std::uint64_t flashFaults = 0;
    std::uint64_t lostPages = 0;
    std::uint64_t directReclaims = 0;

    /** Comp+decomp CPU in paper-scale milliseconds. */
    double compDecompCpuMs(double scale) const noexcept;
};

/**
 * Per-session hook a `custom` event calls back into:
 * hooks[event.hook](system, driver, result). The benches use these
 * for measurements the declarative vocabulary cannot express
 * (analysis-log inspection, touch captures, workload-layer probes).
 * Hooks run on the worker thread of their session; a hook that
 * writes bench state shared across sessions must synchronize or run
 * single-session fleets.
 */
using SessionHook =
    std::function<void(MobileSystem &, SessionDriver &, SessionResult &)>;

} // namespace ariadne::driver

#endif // ARIADNE_DRIVER_SESSION_RESULT_HH
