#include "swap/dram_only.hh"

// DramOnlyScheme is header-only; this file anchors the library.
