/**
 * @file
 * Deterministic pseudo-random number generator.
 *
 * All stochastic decisions in the simulator (page contents, workload
 * churn, access-order noise) draw from explicitly seeded Rng instances
 * so that every experiment is bit-reproducible across runs and
 * platforms. The core is a PCG-XSH-RR 64/32 generator.
 */

#ifndef ARIADNE_SIM_RNG_HH
#define ARIADNE_SIM_RNG_HH

#include <cstdint>

namespace ariadne
{

/** Seedable deterministic random number generator (PCG-XSH-RR). */
class Rng
{
  public:
    /** Construct with a 64-bit seed; equal seeds give equal streams. */
    explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept
    {
        reseed(seed);
    }

    /** Reset the stream as if freshly constructed with @p seed. */
    void
    reseed(std::uint64_t seed) noexcept
    {
        state = 0;
        next32();
        state += seed;
        next32();
    }

    /** Next 32 uniformly distributed bits. */
    std::uint32_t
    next32() noexcept
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + 1442695040888963407ULL;
        auto xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        auto rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next64() noexcept
    {
        return (static_cast<std::uint64_t>(next32()) << 32) | next32();
    }

    /** Uniform integer in [0, bound); bound == 0 returns 0. */
    std::uint64_t
    below(std::uint64_t bound) noexcept
    {
        if (bound == 0)
            return 0;
        // Rejection sampling to avoid modulo bias.
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in the closed range [lo, hi]. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi) noexcept
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform() noexcept
    {
        return static_cast<double>(next64() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial: true with probability @p p. */
    bool
    chance(double p) noexcept
    {
        return uniform() < p;
    }

    /**
     * Derive an independent child stream. Used to give each (app, page)
     * pair its own content stream without correlating sequences.
     */
    Rng
    fork(std::uint64_t salt) noexcept
    {
        return Rng(next64() ^ (salt * 0x9e3779b97f4a7c15ULL));
    }

  private:
    std::uint64_t state = 0;
};

/**
 * Stateless 64-bit mix hash (SplitMix64 finalizer). Used to derive
 * deterministic per-object seeds from identifiers.
 */
constexpr std::uint64_t
mix64(std::uint64_t x) noexcept
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

} // namespace ariadne

#endif // ARIADNE_SIM_RNG_HH
