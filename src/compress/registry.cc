#include "compress/registry.hh"

#include "compress/bdi.hh"
#include "compress/lz4.hh"
#include "compress/lzo.hh"
#include "compress/null_codec.hh"
#include "sim/log.hh"

namespace ariadne
{

const char *
codecKindName(CodecKind kind) noexcept
{
    switch (kind) {
      case CodecKind::Lz4: return "lz4";
      case CodecKind::Lzo: return "lzo";
      case CodecKind::Bdi: return "bdi";
      case CodecKind::Null: return "null";
      default: return "unknown";
    }
}

std::unique_ptr<Codec>
makeCodec(CodecKind kind)
{
    switch (kind) {
      case CodecKind::Lz4: return std::make_unique<Lz4Codec>();
      case CodecKind::Lzo: return std::make_unique<LzoCodec>();
      case CodecKind::Bdi: return std::make_unique<BdiCodec>();
      case CodecKind::Null: return std::make_unique<NullCodec>();
    }
    panic("unreachable codec kind");
}

std::unique_ptr<Codec>
makeCodec(const std::string &name)
{
    if (name == "lz4")
        return makeCodec(CodecKind::Lz4);
    if (name == "lzo")
        return makeCodec(CodecKind::Lzo);
    if (name == "bdi")
        return makeCodec(CodecKind::Bdi);
    if (name == "null")
        return makeCodec(CodecKind::Null);
    fatal("unknown codec name: " + name);
}

std::vector<CodecKind>
allCodecKinds()
{
    return {CodecKind::Lz4, CodecKind::Lzo, CodecKind::Bdi,
            CodecKind::Null};
}

} // namespace ariadne
