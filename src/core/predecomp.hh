/**
 * @file
 * PreDecomp — proactive, predictive decompression (§4.4).
 *
 * A small FIFO staging buffer of pre-decompressed pages. When a fault
 * decompresses the object at zpool sector s, the scheme asks the pool
 * for the object at the next position in sector order (Insight 3) and
 * stages its page here. A staged page keeps its zpool object intact;
 * a hit consumes the staged copy (hiding the decompression latency
 * from the fault), while FIFO eviction of an unused entry simply
 * reverts the page to its compressed state — matching the paper's
 * "otherwise, the data will be compressed again" at zero extra cost
 * because the compressed copy was never discarded.
 */

#ifndef ARIADNE_CORE_PREDECOMP_HH
#define ARIADNE_CORE_PREDECOMP_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "mem/page.hh"
#include "mem/page_arena.hh"

namespace ariadne
{

/** FIFO staging buffer for pre-decompressed pages. */
class PreDecomp
{
  public:
    /**
     * @param capacity_pages Buffer capacity (paper: small FIFO).
     * @param page_arena Arena owning the pages' location metadata.
     */
    PreDecomp(std::size_t capacity_pages, PageArena &page_arena)
        : capacity(capacity_pages), arena(page_arena)
    {}

    /**
     * Stage @p page (currently compressed, single-page unit).
     * If the buffer is full the oldest entry is evicted first; the
     * evicted page's location reverts to Zpool.
     * @return false when the page was already staged or capacity is 0.
     */
    bool stage(PageMeta &page);

    /**
     * Consume a staged page on access (hit). The page's location is
     * left for the caller to set to Resident.
     * @return true when @p page was staged.
     */
    bool consume(PageMeta &page);

    /** Drop a staged page without counting a hit (page freed). */
    void invalidate(PageMeta &page);

    /** True when @p page currently sits in the buffer. */
    bool contains(const PageMeta &page) const;

    std::size_t size() const noexcept { return present.size(); }
    std::size_t capacityPages() const noexcept { return capacity; }

    /** Successful consumptions (prediction hits). */
    std::uint64_t hits() const noexcept { return hitCount; }

    /** Pages staged in total. */
    std::uint64_t staged() const noexcept { return stageCount; }

    /** Entries evicted unused (wasted pre-decompressions). */
    std::uint64_t wasted() const noexcept { return wasteCount; }

    /** Hit rate over staged pages (0 when nothing staged). */
    double
    hitRate() const noexcept
    {
        return stageCount ? static_cast<double>(hitCount) /
                                static_cast<double>(stageCount)
                          : 0.0;
    }

  private:
    void evictOldest();

    std::size_t capacity;
    PageArena &arena;
    std::deque<PageMeta *> order;
    std::unordered_map<const PageMeta *, bool> present;
    std::uint64_t hitCount = 0;
    std::uint64_t stageCount = 0;
    std::uint64_t wasteCount = 0;
};

} // namespace ariadne

#endif // ARIADNE_CORE_PREDECOMP_HH
