/**
 * @file
 * Table 1: anonymous data volume (MB) of five applications at 10 s
 * and 5 min after launch.
 *
 * The workload generator is calibrated against the paper's numbers;
 * this harness verifies the calibration by actually launching each
 * app and growing it to the 5-minute point, then reports simulated
 * vs. paper volumes (full-scale MB). Like Fig. 5, the probe drives a
 * bare AppInstance with the shared eval seed inside a `custom` hook
 * (it measures the generator, not a swap scheme).
 */

#include "bench_common.hh"

using namespace ariadne;
using namespace ariadne::bench;

int
main(int argc, char **argv)
{
    BenchReport report("table1", argc, argv);
    printBanner(std::cout,
                "Table 1: anonymous data volume (MB), 10s and 5min");

    struct PaperRow
    {
        const char *name;
        double mb10s;
        double mb5min;
    };
    const PaperRow paper[] = {
        {"YouTube", 177, 358},  {"Twitter", 182, 273},
        {"Firefox", 560, 716},  {"GoogleEarth", 273, 429},
        {"BangDream", 326, 821},
    };

    ReportTable table({"App", "10s (sim MB)", "10s (paper)",
                       "5min (sim MB)", "5min (paper)"});

    for (const auto &row : paper) {
        AppProfile profile = standardApp(row.name);
        double mb_10s = 0.0, mb_5min = 0.0;

        driver::ScenarioSpec spec = makeSpec("dram");
        spec.name = std::string(row.name) + "/workload";
        spec.apps = {row.name};
        spec.program.push_back(driver::Event::custom(0));

        driver::SessionHook probe =
            [&](MobileSystem &, SessionDriver &,
                driver::SessionResult &) {
                AppInstance inst(profile, evalScale, evalSeed);
                inst.coldLaunch();
                mb_10s = static_cast<double>(inst.anonBytes()) /
                         evalScale / 1048576.0;
                // Grow to the 5 min point.
                inst.execute(Tick{290} * 1000000000ULL);
                mb_5min = static_cast<double>(inst.anonBytes()) /
                          evalScale / 1048576.0;
            };
        report.add(runVariant(std::move(spec), {probe}));

        table.addRow({row.name, ReportTable::num(mb_10s, 0),
                      ReportTable::num(row.mb10s, 0),
                      ReportTable::num(mb_5min, 0),
                      ReportTable::num(row.mb5min, 0)});
    }
    table.print(std::cout);
    std::cout << "\nVolumes grow with execution time for every app, "
                 "matching the paper's observation.\n";
    report.addTable("anon_volume_mb", table);
    return report.finish();
}
