#!/usr/bin/env python3
"""Render ariadne_sim observability artifacts as one HTML page.

Reads any subset of the three JSON artifacts —

    ariadne_sim --config scenarios/daily.cfg \
                --metrics m.json --timeline t.json --journeys j.json
    tools/ariadne_dashboard.py --metrics m.json --timeline t.json \
                               --journeys j.json -o dashboard.html

— and writes a single self-contained HTML file: gauge time-series as
inline SVG line charts (one per registered gauge, colored per
session), metric histograms as log2-bucket bar charts, and sampled
page journeys as swimlanes (one lane per page, one dot per lifecycle
step). No external assets, no JavaScript dependencies, stdlib only.
"""

import argparse
import html
import json
import sys

PALETTE = [
    "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
    "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
]

STEP_COLORS = {
    "alloc": "#59a14f", "hot": "#e15759", "warm": "#f28e2b",
    "cold": "#4e79a7", "zram": "#b07aa1", "writeback": "#9c755f",
    "flash": "#76b7b2", "staged": "#edc948", "swapin": "#ff9da7",
    "resident": "#59a14f", "recreate": "#e15759", "lost": "#000000",
    "free": "#bab0ac",
}

CSS = """
body { font-family: -apple-system, 'Segoe UI', sans-serif;
       margin: 24px; color: #222; background: #fafafa; }
h1 { font-size: 20px; }
h2 { font-size: 16px; border-bottom: 1px solid #ddd;
     padding-bottom: 4px; margin-top: 28px; }
.chart { display: inline-block; margin: 8px; padding: 8px;
         background: #fff; border: 1px solid #e0e0e0;
         border-radius: 4px; vertical-align: top; }
.chart .title { font-size: 12px; font-weight: 600; margin: 0 0 4px; }
.meta { font-size: 12px; color: #666; }
.legend { font-size: 11px; color: #444; }
table.summary { border-collapse: collapse; font-size: 12px; }
table.summary td, table.summary th { border: 1px solid #ddd;
    padding: 3px 8px; text-align: right; }
table.summary th { background: #f0f0f0; }
table.summary td:first-child, table.summary th:first-child {
    text-align: left; }
"""


def load(path, root_key):
    """Load one artifact; exit 2 with a one-line diagnostic on
    missing/malformed input so CI failures are self-explaining."""
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"ariadne_dashboard: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"ariadne_dashboard: {path} is not valid JSON: {e}")
    if root_key not in doc:
        sys.exit(f"ariadne_dashboard: {path} lacks the '{root_key}' "
                 "marker; is it the right artifact?")
    return doc


def fmt(v):
    if isinstance(v, float):
        return f"{v:,.2f}".rstrip("0").rstrip(".")
    return f"{v:,}"


def svg_line_chart(name, points, width=360, height=120):
    """One gauge series as an SVG polyline per session."""
    pad = 6
    ts = [p["tMs"] for p in points]
    vs = [p["v"] for p in points]
    t0, t1 = min(ts), max(ts)
    v0, v1 = min(vs), max(vs)
    tspan = (t1 - t0) or 1.0
    vspan = (v1 - v0) or 1.0

    def x(t):
        return pad + (t - t0) / tspan * (width - 2 * pad)

    def y(v):
        return height - pad - (v - v0) / vspan * (height - 2 * pad)

    sessions = {}
    for p in points:
        sessions.setdefault(p["session"], []).append(p)
    polys = []
    for i, (sess, pts) in enumerate(sorted(sessions.items())):
        color = PALETTE[i % len(PALETTE)]
        coords = " ".join(f"{x(p['tMs']):.1f},{y(p['v']):.1f}"
                          for p in pts)
        if len(pts) > 1:
            polys.append(f'<polyline points="{coords}" fill="none" '
                         f'stroke="{color}" stroke-width="1.2"/>')
        else:
            polys.append(f'<circle cx="{x(pts[0]["tMs"]):.1f}" '
                         f'cy="{y(pts[0]["v"]):.1f}" r="2" '
                         f'fill="{color}"/>')
    return (
        f'<div class="chart"><p class="title">{html.escape(name)}</p>'
        f'<svg width="{width}" height="{height}">'
        f'<rect width="{width}" height="{height}" fill="#fff"/>'
        + "".join(polys) +
        f'</svg><p class="legend">[{fmt(v0)}, {fmt(v1)}] over '
        f'[{fmt(t0)}, {fmt(t1)}] ms · {len(sessions)} session(s)</p>'
        '</div>')


def svg_histogram(name, hist, width=360, height=120):
    """Log2-bucket histogram as an SVG bar chart."""
    pad = 6
    buckets = hist.get("buckets", [])
    if not buckets:
        return ""
    peak = max(buckets) or 1
    n = len(buckets)
    bar_w = (width - 2 * pad) / n
    bars = []
    for i, count in enumerate(buckets):
        if not count:
            continue
        h = count / peak * (height - 2 * pad)
        bars.append(
            f'<rect x="{pad + i * bar_w:.1f}" '
            f'y="{height - pad - h:.1f}" width="{bar_w * 0.85:.1f}" '
            f'height="{h:.1f}" fill="#4e79a7">'
            f'<title>bucket {i} (&lt; 2^{i}): {fmt(count)}</title>'
            '</rect>')
    mean = hist.get("mean", 0)
    return (
        f'<div class="chart"><p class="title">{html.escape(name)}</p>'
        f'<svg width="{width}" height="{height}">'
        f'<rect width="{width}" height="{height}" fill="#fff"/>'
        + "".join(bars) +
        f'</svg><p class="legend">n {fmt(hist.get("count", 0))} · '
        f'mean {fmt(mean)} · log2 buckets 0..{n - 1}</p></div>')


def journey_swimlanes(pages, max_pages, width=840):
    """Sampled page journeys: one lane per page, a dot per step."""
    lane_h = 16
    pad_left = 150
    pad = 6
    shown = pages[:max_pages]
    t1 = max((s["tMs"] for p in shown for s in p["steps"]),
             default=1.0) or 1.0
    height = pad + lane_h * len(shown) + pad
    rows = []
    for i, page in enumerate(shown):
        yy = pad + i * lane_h + lane_h // 2
        label = (f's{page["session"]} u{page["uid"]} '
                 f'p{page["pfn"]}')
        rows.append(
            f'<text x="4" y="{yy + 4}" font-size="10" '
            f'fill="#444">{html.escape(label)}</text>')
        rows.append(
            f'<line x1="{pad_left}" y1="{yy}" x2="{width - pad}" '
            f'y2="{yy}" stroke="#eee"/>')
        for step in page["steps"]:
            xx = pad_left + step["tMs"] / t1 * (width - pad_left - pad)
            color = STEP_COLORS.get(step["step"], "#888")
            title = f'{step["step"]} @ {fmt(step["tMs"])} ms'
            if "detail" in step:
                title += f' ({fmt(step["detail"])})'
            rows.append(
                f'<circle cx="{xx:.1f}" cy="{yy}" r="3" '
                f'fill="{color}"><title>{html.escape(title)}</title>'
                '</circle>')
    legend = " ".join(
        f'<span style="color:{c}">●</span>&nbsp;{s}'
        for s, c in STEP_COLORS.items())
    note = ""
    if len(pages) > len(shown):
        note = (f" · showing {len(shown)} of {len(pages)} sampled "
                "pages (raise --max-pages for more)")
    return (
        f'<div class="chart"><svg width="{width}" height="{height}">'
        f'<rect width="{width}" height="{height}" fill="#fff"/>'
        + "".join(rows) +
        f'</svg><p class="legend">{legend}{note}</p></div>')


def meta_block(doc):
    meta = doc.get("meta", {})
    parts = [f"{k}: {meta[k]}" for k in
             ("scenario", "threads", "gitDescribe", "buildType")
             if meta.get(k) not in (None, "", 0)]
    return f'<p class="meta">{html.escape(" · ".join(parts))}</p>'


def main():
    ap = argparse.ArgumentParser(
        description="Render ariadne_sim --metrics/--timeline/"
                    "--journeys JSON as one self-contained HTML page.")
    ap.add_argument("--metrics", help="--metrics JSON artifact")
    ap.add_argument("--timeline", help="--timeline JSON artifact")
    ap.add_argument("--journeys", help="--journeys JSON artifact")
    ap.add_argument("--max-pages", type=int, default=40,
                    help="journey lanes to draw (default 40)")
    ap.add_argument("-o", "--output", required=True,
                    help="output HTML file ('-' = stdout)")
    args = ap.parse_args()
    if not (args.metrics or args.timeline or args.journeys):
        ap.error("give at least one of --metrics/--timeline/--journeys")

    body = ["<h1>ariadne flight recorder</h1>"]

    if args.timeline:
        doc = load(args.timeline, "ariadneTimeline")
        body.append("<h2>Gauge timelines</h2>")
        body.append(meta_block(doc))
        interval = doc.get("intervalMs", 0)
        dropped = doc.get("droppedPoints", 0)
        cadence = (f"sampled every {interval} ms of simulated time"
                   if interval else "mixed sampling cadence")
        body.append(f'<p class="meta">{cadence}'
                    + (f" · {fmt(dropped)} points dropped to ring caps"
                       if dropped else "") + "</p>")
        series = doc.get("series", {})
        for name in sorted(series):
            if series[name]:
                body.append(svg_line_chart(name, series[name]))
        if not series:
            body.append('<p class="meta">no series recorded</p>')

    if args.metrics:
        doc = load(args.metrics, "ariadneMetrics")
        body.append("<h2>Gauges (run summary)</h2>")
        body.append(meta_block(doc))
        gauges = doc.get("gauges", {})
        if gauges:
            head = ("<tr><th>gauge</th><th>samples</th><th>mean</th>"
                    "<th>min</th><th>max</th></tr>")
            rows = "".join(
                f"<tr><td>{html.escape(name)}</td>"
                f"<td>{fmt(g['count'])}</td><td>{fmt(g['mean'])}</td>"
                f"<td>{fmt(g['min'])}</td><td>{fmt(g['max'])}</td></tr>"
                for name, g in sorted(gauges.items()))
            body.append(f'<table class="summary">{head}{rows}</table>')
        else:
            body.append('<p class="meta">no gauges recorded</p>')
        body.append("<h2>Histograms</h2>")
        hists = doc.get("histograms", {})
        for name in sorted(hists):
            chart = svg_histogram(name, hists[name])
            if chart:
                body.append(chart)
        if not hists:
            body.append('<p class="meta">no histograms recorded</p>')

    if args.journeys:
        doc = load(args.journeys, "ariadneJourneys")
        body.append("<h2>Page journeys</h2>")
        body.append(meta_block(doc))
        pages = doc.get("pages", [])
        stride = doc.get("sampleEvery", 0)
        dropped = doc.get("droppedEvents", 0)
        body.append(
            f'<p class="meta">{fmt(len(pages))} sampled pages '
            f"(every {stride}th page)"
            + (f" · {fmt(dropped)} events dropped to ring caps"
               if dropped else "") + "</p>")
        if pages:
            body.append(journey_swimlanes(pages, args.max_pages))

    page = ("<!DOCTYPE html><html><head><meta charset='utf-8'>"
            "<title>ariadne flight recorder</title>"
            f"<style>{CSS}</style></head><body>"
            + "".join(body) + "</body></html>\n")
    if args.output == "-":
        sys.stdout.write(page)
    else:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(page)
        print(f"dashboard written to {args.output}", file=sys.stderr)


if __name__ == "__main__":
    main()
